"""Durable job store: submit/status/result/cancel with exactly-once resume.

The :class:`JobStore` is the layer the CLI session and the ``repro
serve`` daemon share.  It owns three pieces of on-disk state under its
``state_dir``:

``jobs.jsonl``
    The crash-safe job journal.  Every job-state transition is appended
    with ``flush`` + ``fsync`` *before* the effect is surfaced
    (fsync-before-ack), and loading tolerates torn or corrupt lines
    byte-robustly (:func:`repro.parallel.checkpoint.load_jsonl_tolerant`),
    so a ``SIGKILL`` at any instant loses at most the in-flight
    transition — never completed work.

``cache/<key>.json``
    The content-addressed result cache.  A job's identity *is* its
    :func:`repro.service.cachekey.cache_key`; payloads are canonical
    JSON bytes written atomically (temp file + ``rename`` after
    ``fsync``), so repeated submissions of the same problem return
    byte-identical bytes without rescheduling.  :meth:`JobStore.gc`
    bounds the cache to a byte budget by evicting least-recently-used
    payloads (mtime is refreshed on every hit) behind fsync'd
    ``evicted`` tombstones, so recovery never resurrects an evicted
    payload; re-submitting an evicted key simply re-runs the job.

``sweeps/<key>.jsonl``
    Per-sweep candidate journals (:class:`repro.parallel.checkpoint.
    SweepJournal`).  A sweep job killed mid-run resumes from its own
    journal: already-evaluated candidates are restored, the incumbent
    area bound is re-seeded, and no candidate is evaluated twice.

Exactly-once semantics (docs/service.md): results are committed by the
ordered pair *cache write → ``done`` journal record*.  On recovery a
job whose cache file exists is complete regardless of its journaled
state (the crash fell between the two steps); a job journaled
``queued``/``running`` without a cache file re-runs, and its observable
work is idempotent — candidate-level progress lives in the sweep
journal, and payload bytes are a pure function of the cache key.

Failure policy: each attempt may be bounded by ``job_timeout``; failed
or timed-out attempts retry under a bounded exponential-backoff
:class:`repro.parallel.retry.RetryPolicy`; overload degrades to
:class:`QueueFullError` (HTTP 429 at the server) instead of unbounded
queue growth.  A deterministic :class:`repro.parallel.jobs.FaultPlan`
can target the Nth attempt started by this store — the chaos harness's
hook (``repro serve --inject-fault``).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from ..errors import ReproError
from ..obs import get_logger
from ..obs.metrics import MetricsRegistry
from ..parallel.checkpoint import load_jsonl_tolerant
from ..parallel.jobs import FaultPlan
from ..parallel.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .cachekey import cache_key, canonical_options, canonical_problem_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.events import EventBus

_log = get_logger(__name__)

#: Job journal schema version.
JOB_JOURNAL_VERSION = 1

#: Job kinds the runner knows how to execute.
JOB_KINDS = ("schedule", "sweep", "certify")

#: Job lifecycle states.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"
#: A finished job whose cached payload was garbage-collected: the
#: tombstone is terminal (recovery never resurrects the payload) but a
#: re-submission re-runs the job like a failed/cancelled one.
STATE_EVICTED = "evicted"

TERMINAL_STATES = frozenset(
    {STATE_DONE, STATE_FAILED, STATE_CANCELLED, STATE_EVICTED}
)


class ServiceError(ReproError):
    """The scheduling service hit an unusable request or broken state."""

    code = "SERVE"


class QueueFullError(ServiceError):
    """The job queue is at capacity; the caller should retry later."""

    code = "BUSY"


class UnknownJobError(ServiceError):
    """No job with the requested id exists in this store."""

    code = "JOB"


class JobCancelled(Exception):
    """Raised inside a job attempt when its cancellation was requested."""


@dataclass(frozen=True)
class JobSpec:
    """What one job computes, as canonical plain data.

    ``problem_text`` is already canonical (parse + re-emit), ``options``
    already JSON-round-tripped — two specs with the same ``cache key``
    are field-for-field equal.  ``fault`` is the test-only injection
    directive; it is deliberately *excluded* from the cache key (a
    faulted run must still converge to the same cached bytes).
    """

    kind: str
    problem_text: str
    options: Mapping[str, object]
    fault: Optional[str] = None

    @classmethod
    def create(
        cls,
        kind: str,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
        fault: Optional[str] = None,
    ) -> Tuple["JobSpec", str]:
        """Canonicalize a request; returns ``(spec, cache_key)``."""
        from .runner import validate_options

        if kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {kind!r}; known: {', '.join(JOB_KINDS)}"
            )
        canonical = canonical_problem_text(problem_text)
        opts = canonical_options(options)
        validate_options(kind, opts)
        key = cache_key(kind, canonical, opts)
        return cls(kind, canonical, opts, fault), key

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "problem": self.problem_text,
            "options": dict(self.options),
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobSpec":
        return cls(
            kind=str(data["kind"]),
            problem_text=str(data["problem"]),
            options=dict(data.get("options") or {}),  # type: ignore[arg-type]
            fault=data.get("fault"),  # type: ignore[arg-type]
        )


@dataclass
class JobRecord:
    """Mutable in-store state of one job."""

    job_id: str
    spec: JobSpec
    state: str = STATE_QUEUED
    attempts: int = 0
    error: Optional[str] = None
    #: True when this record was answered from the result cache without
    #: any execution in this store's lifetime.
    cached: bool = False
    created: float = field(default_factory=time.time)
    updated: float = field(default_factory=time.time)
    cancel_event: threading.Event = field(default_factory=threading.Event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> Dict[str, object]:
        """The status shape the HTTP API and ``repro jobs`` render."""
        return {
            "job": self.job_id,
            "kind": self.spec.kind,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "cached": self.cached,
            "created": self.created,
            "updated": self.updated,
        }


class JobStore:
    """Crash-safe job queue + content-addressed result cache.

    Thread-safe: ``submit``/``status``/``cancel`` may be called from
    request-handler threads while worker threads drain the queue via
    :meth:`process_one`.  See the module docstring for the durability
    contract and docs/service.md for the architecture.

    Args:
        state_dir: Directory holding the journal, cache, and sweep
            journals; created if missing.
        queue_limit: Ceiling on *queued* (not yet running) jobs; a
            submit beyond it raises :class:`QueueFullError`.
        job_timeout: Per-attempt wall-clock budget in seconds (None =
            unlimited).  Enforced by the worker joining the attempt
            thread; a timed-out attempt is asked to stop cooperatively
            and its late output is discarded.
        retry_policy: Bounded exponential backoff for failed attempts.
        fault_plan: Deterministic chaos hook: a directive fired on the
            Nth attempt started by this store (see
            :class:`repro.parallel.jobs.FaultPlan`).
        metrics: Optional shared :class:`repro.obs.metrics.
            MetricsRegistry`; one is created when omitted.
        bus: Optional :class:`repro.obs.events.EventBus`; every job
            state transition is published as a plain ``{"name": "job",
            ...}`` dict.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        queue_limit: int = 64,
        job_timeout: Optional[float] = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        bus: "Optional[EventBus]" = None,
    ) -> None:
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {queue_limit}")
        self.state_dir = str(state_dir)
        self.cache_dir = os.path.join(self.state_dir, "cache")
        self.sweep_dir = os.path.join(self.state_dir, "sweeps")
        self.journal_path = os.path.join(self.state_dir, "jobs.jsonl")
        os.makedirs(self.cache_dir, exist_ok=True)
        os.makedirs(self.sweep_dir, exist_ok=True)
        self.queue_limit = queue_limit
        self.job_timeout = job_timeout
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = bus
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, JobRecord] = {}
        self._queue: Deque[str] = deque()
        self._journal_handle: Optional[IO[str]] = None
        #: Attempt starts across this store's lifetime (fault-plan index).
        self._executions = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Submission and inspection
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        problem_text: str,
        options: Optional[Mapping[str, object]] = None,
        fault: Optional[str] = None,
    ) -> Tuple[JobRecord, bool]:
        """Submit a job; returns ``(record, cache_hit)``.

        Identical submissions coalesce: a key already queued, running,
        or done returns the existing record (``cache_hit`` True only
        when its result bytes are already durable).  A key whose cached
        payload survives on disk — from any previous store lifetime —
        is answered without any scheduling at all.
        """
        spec, key = JobSpec.create(kind, problem_text, options, fault)
        with self._cond:
            self._check_open()
            record = self._jobs.get(key)
            if record is not None and not (
                record.state in (STATE_FAILED, STATE_CANCELLED, STATE_EVICTED)
            ):
                hit = record.state == STATE_DONE
                if hit:
                    self.metrics.inc("service_cache_hits")
                    self._touch_cache(key)
                self.metrics.inc("service_jobs_coalesced")
                return record, hit
            if self._cache_file_ok(key):
                self._touch_cache(key)
                record = JobRecord(
                    job_id=key, spec=spec, state=STATE_DONE, cached=True
                )
                self._jobs[key] = record
                self.metrics.inc("service_cache_hits")
                return record, True
            if len(self._queue) >= self.queue_limit:
                self.metrics.inc("service_queue_rejected")
                raise QueueFullError(
                    f"job queue is full ({self.queue_limit} queued); "
                    "retry later"
                )
            if record is None:
                record = JobRecord(job_id=key, spec=spec)
                self._jobs[key] = record
            else:
                # Re-submission of a failed/cancelled job starts fresh.
                record.spec = spec
                record.state = STATE_QUEUED
                record.attempts = 0
                record.error = None
                record.cached = False
                record.cancel_event = threading.Event()
            self._append_journal(
                record, STATE_QUEUED, attempt=0, spec=spec.as_dict()
            )
            self._queue.append(key)
            self.metrics.inc("service_jobs_submitted")
            self.metrics.set_gauge("service_queue_depth", len(self._queue))
            self._cond.notify_all()
        self._publish(record)
        return record, False

    def status(self, job_id: str) -> JobRecord:
        """The record of ``job_id``; raises :class:`UnknownJobError`."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is not None:
                return record
        raise UnknownJobError(f"unknown job {job_id!r}")

    def jobs(self) -> List[JobRecord]:
        """Every known job, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: r.created)

    def result_bytes(self, job_id: str) -> bytes:
        """The cached payload bytes of a finished job, verbatim."""
        record = self.status(job_id)
        if record.state != STATE_DONE:
            raise ServiceError(
                f"job {job_id} is {record.state}, not done"
                + (f": {record.error}" if record.error else "")
            )
        path = self._cache_path(job_id)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except OSError as exc:
            raise ServiceError(
                f"result of job {job_id} is missing from the cache: {exc}"
            ) from exc

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the job will not complete.

        Queued jobs are cancelled immediately; running jobs are asked to
        stop at their next cancellation point (the attempt then reports
        ``cancelled``); terminal jobs return False.
        """
        with self._cond:
            record = self._jobs.get(job_id)
            if record is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            if record.terminal:
                return False
            record.cancel_event.set()
            if record.state == STATE_QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass
                self._transition(record, STATE_CANCELLED)
                self.metrics.set_gauge(
                    "service_queue_depth", len(self._queue)
                )
            return True

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobRecord:
        """Block until ``job_id`` reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            record = self._jobs.get(job_id)
            if record is None:
                raise UnknownJobError(f"unknown job {job_id!r}")
            while not record.terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(
                            f"timed out waiting for job {job_id}"
                        )
                self._cond.wait(remaining)
            return record

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def process_one(self, timeout: Optional[float] = None) -> Optional[str]:
        """Run the next queued job attempt; returns its id (None = idle).

        The body of a worker thread's loop.  Blocks up to ``timeout``
        seconds for a job to arrive (None = forever, 0 = poll).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)
            job_id = self._queue.popleft()
            record = self._jobs[job_id]
            self.metrics.set_gauge("service_queue_depth", len(self._queue))
        self._execute(record)
        return job_id

    def run_until_idle(self) -> int:
        """Drain the queue synchronously; returns jobs processed."""
        processed = 0
        while self.process_one(timeout=0.0) is not None:
            processed += 1
        return processed

    def recover(self) -> int:
        """Restore journaled jobs after a restart; returns requeued count.

        Terminal jobs come back as history; ``queued``/``running`` jobs
        whose cache file already exists are promoted to ``done`` (the
        crash fell between the cache write and the ``done`` record);
        the rest re-enter the queue with their attempt count preserved,
        and sweep jobs resume from their candidate journal.
        """
        if not os.path.exists(self.journal_path):
            return 0
        entries, dropped = load_jsonl_tolerant(self.journal_path)
        if dropped:
            _log.warning(
                "job journal %s: dropped %d unreadable line(s); the "
                "affected transitions are recovered from the cache or "
                "re-run",
                self.journal_path,
                dropped,
            )
        folded: Dict[str, Dict[str, object]] = {}
        order: List[str] = []
        for entry in entries:
            if entry.get("version") != JOB_JOURNAL_VERSION:
                continue
            job_id = entry.get("job")
            state = entry.get("state")
            if not isinstance(job_id, str) or state is None:
                continue
            slot = folded.setdefault(job_id, {})
            if job_id not in order:
                order.append(job_id)
            if "spec" in entry and "spec" not in slot:
                slot["spec"] = entry["spec"]
            slot["state"] = state
            slot["attempts"] = max(
                int(slot.get("attempts", 0) or 0),
                int(entry.get("attempt", 0) or 0),
            )
            if entry.get("error") is not None:
                slot["error"] = entry["error"]
        requeued = 0
        with self._cond:
            for job_id in order:
                slot = folded[job_id]
                if job_id in self._jobs:
                    continue
                if slot.get("state") == STATE_EVICTED:
                    # Tombstone: the payload was garbage-collected.  A
                    # crash between the tombstone and the unlink leaves
                    # the file behind — complete the unlink now; never
                    # resurrect the payload as a completed job.
                    try:
                        os.unlink(self._cache_path(job_id))
                    except OSError:
                        pass
                    spec_data = slot.get("spec")
                    if isinstance(spec_data, dict):
                        try:
                            spec = JobSpec.from_dict(spec_data)
                        except (KeyError, TypeError, ValueError):
                            continue
                        self._jobs[job_id] = JobRecord(
                            job_id=job_id,
                            spec=spec,
                            state=STATE_EVICTED,
                            attempts=int(slot.get("attempts", 0) or 0),
                        )
                    continue
                spec_data = slot.get("spec")
                if not isinstance(spec_data, dict):
                    _log.warning(
                        "job %s: journal lost the spec record; marking "
                        "failed (resubmit to retry)",
                        job_id,
                    )
                    if self._cache_file_ok(job_id):
                        self._jobs[job_id] = JobRecord(
                            job_id=job_id,
                            spec=JobSpec("schedule", "", {}),
                            state=STATE_DONE,
                            cached=True,
                        )
                    continue
                try:
                    spec = JobSpec.from_dict(spec_data)
                except (KeyError, TypeError, ValueError):
                    _log.warning("job %s: unreadable journaled spec", job_id)
                    continue
                record = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    state=str(slot["state"]),
                    attempts=int(slot.get("attempts", 0) or 0),
                    error=slot.get("error"),  # type: ignore[arg-type]
                )
                if record.state in (STATE_QUEUED, STATE_RUNNING):
                    if self._cache_file_ok(job_id):
                        record.state = STATE_DONE
                        record.cached = True
                        self._append_journal(
                            record, STATE_DONE, attempt=record.attempts
                        )
                    else:
                        record.state = STATE_QUEUED
                        self._queue.append(job_id)
                        requeued += 1
                self._jobs[job_id] = record
            if requeued:
                self.metrics.inc("service_jobs_recovered", requeued)
                self.metrics.set_gauge(
                    "service_queue_depth", len(self._queue)
                )
                self._cond.notify_all()
        if requeued:
            _log.info(
                "recovered %d in-flight job(s) from %s",
                requeued,
                self.journal_path,
            )
        return requeued

    def gc(self, max_cache_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used cache payloads down to a byte budget.

        Cache files are ranked by modification time (touched on every
        cache hit, so mtime *is* recency of use) and evicted oldest
        first until the total size fits ``max_cache_bytes``.  Each
        eviction appends a durable ``evicted`` tombstone to the job
        journal *before* the payload is unlinked (fsync-before-unlink),
        so a crash between the two steps is recovered by completing the
        unlink — never by resurrecting the payload as a completed job.
        A later re-submission of an evicted key re-runs the job.

        Returns ``{"evicted": n, "freed_bytes": b, "remaining_bytes": r}``.
        """
        if max_cache_bytes < 0:
            raise ServiceError(
                f"max_cache_bytes must be >= 0, got {max_cache_bytes}"
            )
        evicted = 0
        freed = 0
        with self._cond:
            self._check_open()
            entries: List[Tuple[float, int, str, str]] = []
            total = 0
            for name in os.listdir(self.cache_dir):
                if name.startswith(".") or not name.endswith(".json"):
                    continue  # in-flight temp files are not payloads
                path = os.path.join(self.cache_dir, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                entries.append((info.st_mtime, info.st_size, name[:-5], path))
                total += info.st_size
            entries.sort()
            for _mtime, size, job_id, path in entries:
                if total <= max_cache_bytes:
                    break
                record = self._jobs.get(job_id)
                if record is None:
                    # Payload from a previous store lifetime: synthesize
                    # the tombstone so recovery still sees it.
                    record = JobRecord(
                        job_id=job_id,
                        spec=JobSpec("schedule", "", {}),
                        state=STATE_EVICTED,
                    )
                    self._jobs[job_id] = record
                    self._append_journal(record, STATE_EVICTED, attempt=0)
                    self._publish(record)
                else:
                    record.cached = False
                    self._transition(record, STATE_EVICTED)
                try:
                    os.unlink(path)
                except OSError:
                    pass  # recovery completes the unlink from the tombstone
                total -= size
                freed += size
                evicted += 1
            if evicted:
                self.metrics.inc("service_cache_evictions", evicted)
        return {
            "evicted": evicted,
            "freed_bytes": freed,
            "remaining_bytes": total,
        }

    def close(self) -> None:
        """Stop accepting work and wake blocked workers."""
        with self._cond:
            self._closed = True
            if self._journal_handle is not None:
                self._journal_handle.close()
                self._journal_handle: Optional[IO[str]] = None
            self._cond.notify_all()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("job store is closed")

    def _cache_path(self, job_id: str) -> str:
        return os.path.join(self.cache_dir, f"{job_id}.json")

    def _sweep_path(self, job_id: str) -> str:
        return os.path.join(self.sweep_dir, f"{job_id}.jsonl")

    def _cache_file_ok(self, job_id: str) -> bool:
        try:
            return os.path.getsize(self._cache_path(job_id)) > 0
        except OSError:
            return False

    def _touch_cache(self, job_id: str) -> None:
        """Refresh a payload's mtime: the LRU clock of :meth:`gc`."""
        try:
            os.utime(self._cache_path(job_id))
        except OSError:
            pass

    def _append_journal(
        self,
        record: JobRecord,
        state: str,
        *,
        attempt: int,
        spec: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
        backoff: Optional[float] = None,
    ) -> None:
        """Durably journal one transition (fsync-before-ack)."""
        entry: Dict[str, object] = {
            "version": JOB_JOURNAL_VERSION,
            "job": record.job_id,
            "state": state,
            "attempt": attempt,
            "ts": time.time(),
        }
        if spec is not None:
            entry["spec"] = spec
        if error is not None:
            entry["error"] = error
        if backoff is not None:
            entry["backoff"] = backoff
        try:
            if self._journal_handle is None:
                self._journal_handle = open(
                    self.journal_path, "a", encoding="utf-8"
                )
            self._journal_handle.write(
                json.dumps(entry, sort_keys=True) + "\n"
            )
            self._journal_handle.flush()
            os.fsync(self._journal_handle.fileno())
        except OSError as exc:
            raise ServiceError(
                f"cannot write job journal {self.journal_path!r}: {exc}"
            ) from exc

    def _transition(
        self, record: JobRecord, state: str, error: Optional[str] = None
    ) -> None:
        """Journal + apply one state change (under the lock)."""
        self._append_journal(
            record, state, attempt=record.attempts, error=error
        )
        record.state = state
        record.error = error
        record.updated = time.time()
        self._cond.notify_all()
        self._publish(record)

    def _publish(self, record: JobRecord) -> None:
        if self.bus is not None:
            event = {"name": "job"}
            event.update(record.as_dict())
            self.bus.publish(event)

    def _write_cache(self, job_id: str, payload: bytes) -> None:
        """Atomically persist the payload bytes (tmp + fsync + rename)."""
        final = self._cache_path(job_id)
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=f".{job_id[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise ServiceError(
                f"cannot write result cache for job {job_id}: {exc}"
            ) from exc
        try:  # best-effort directory durability
            dir_fd = os.open(self.cache_dir, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass

    def _execute(self, record: JobRecord) -> None:
        """Run one attempt of ``record`` in the calling worker thread."""
        from .runner import RunContext, execute_job

        policy = self.retry_policy
        attempt = record.attempts + 1
        delay = policy.delay_for(min(attempt, policy.max_attempts))
        if attempt > 1 and delay > 0:
            time.sleep(delay)
        with self._cond:
            if record.cancel_event.is_set():
                if not record.terminal:
                    self._transition(record, STATE_CANCELLED)
                return
            record.attempts = attempt
            self._executions += 1
            execution = self._executions
            self._append_journal(record, STATE_RUNNING, attempt=attempt)
            record.state = STATE_RUNNING
            record.updated = time.time()
            self.metrics.set_gauge(
                "service_jobs_running",
                sum(
                    1 for r in self._jobs.values()
                    if r.state == STATE_RUNNING
                ),
            )
        self._publish(record)

        # Spec-level faults are transient (first attempt only) so the
        # retry path converges; plan-level faults fire by execution
        # index, the chaos harness's deterministic clock.
        fault = record.spec.fault if attempt == 1 else None
        if self.fault_plan is not None:
            fault = self.fault_plan.fault_for(execution) or fault
        sweep_path = (
            self._sweep_path(record.job_id)
            if record.spec.kind == "sweep"
            else None
        )
        context = RunContext(
            job_id=record.job_id,
            sweep_journal_path=sweep_path,
            corrupt_target=sweep_path or self.journal_path,
            should_stop=record.cancel_event.is_set,
            fault=fault,
        )

        outcome: Dict[str, object] = {}

        def _attempt() -> None:
            try:
                outcome["payload"] = execute_job(record.spec, context)
            except JobCancelled:
                outcome["cancelled"] = True
            except BaseException as exc:  # noqa: BLE001 - isolate the job
                outcome["error"] = f"{type(exc).__name__}: {exc}"

        started = time.perf_counter()
        thread = threading.Thread(
            target=_attempt, name=f"job-{record.job_id[:12]}", daemon=True
        )
        thread.start()
        thread.join(self.job_timeout)
        if thread.is_alive():
            # Give up on this attempt: ask it to stop at its next
            # cancellation point and discard whatever it produces late.
            record.cancel_event.set()
            self._finish_attempt(
                record,
                attempt,
                error=(
                    f"attempt {attempt} timed out after "
                    f"{self.job_timeout:g} s"
                ),
                timed_out=True,
            )
            return
        elapsed = time.perf_counter() - started
        self.metrics.observe("service_job_seconds", elapsed)
        if "payload" in outcome:
            payload = outcome["payload"]
            assert isinstance(payload, bytes)
            self._write_cache(record.job_id, payload)
            with self._cond:
                self._transition(record, STATE_DONE)
            self.metrics.inc("service_jobs_completed")
            return
        if outcome.get("cancelled") or record.cancel_event.is_set():
            with self._cond:
                self._transition(record, STATE_CANCELLED)
            self.metrics.inc("service_jobs_cancelled")
            return
        self._finish_attempt(
            record, attempt, error=str(outcome.get("error", "unknown failure"))
        )

    def _finish_attempt(
        self,
        record: JobRecord,
        attempt: int,
        *,
        error: str,
        timed_out: bool = False,
    ) -> None:
        """Retry with backoff or fail permanently after a bad attempt."""
        policy = self.retry_policy
        with self._cond:
            if timed_out:
                # The stale attempt thread saw the cancel flag; new
                # attempts need a fresh one.
                record.cancel_event = threading.Event()
            if policy.allows(attempt + 1):
                backoff = policy.delay_for(attempt + 1)
                _log.warning(
                    "job %s attempt %d failed (%s); retrying in %.3gs",
                    record.job_id[:16],
                    attempt,
                    error,
                    backoff,
                )
                self._append_journal(
                    record,
                    STATE_QUEUED,
                    attempt=attempt,
                    error=error,
                    backoff=backoff,
                )
                record.state = STATE_QUEUED
                record.error = error
                record.updated = time.time()
                self._queue.appendleft(record.job_id)
                self.metrics.inc("service_jobs_retried")
                self.metrics.set_gauge(
                    "service_queue_depth", len(self._queue)
                )
                self._cond.notify_all()
            else:
                _log.warning(
                    "job %s failed permanently after %d attempt(s): %s",
                    record.job_id[:16],
                    attempt,
                    error,
                )
                self._transition(record, STATE_FAILED, error=error)
                self.metrics.inc("service_jobs_failed")
        self._publish(record)
