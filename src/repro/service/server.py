"""The ``repro serve`` daemon: a stdlib HTTP front end over a JobStore.

One long-running process owns a :class:`~repro.service.jobstore.
JobStore` and exposes it over HTTP — plain :mod:`http.server` threading
machinery, TCP on localhost or a unix-domain socket, zero dependencies.
Worker threads drain the store's queue; request-handler threads only
touch the thread-safe store API, so a slow job never blocks status
polls.

Endpoints (all JSON unless noted):

========================  ==================================================
``POST /v1/jobs``          Submit ``{"kind", "problem", "options", "fault"}``;
                           returns the job status with ``cached`` set on a
                           cache hit.  ``429`` when the queue is full,
                           ``400`` on invalid problems/options.
``GET /v1/jobs``           Every known job, oldest first.
``GET /v1/jobs/<id>``      One job's status.
``DELETE /v1/jobs/<id>``   Request cancellation.
``GET /v1/jobs/<id>/result``  The cached payload bytes, verbatim
                           (``application/json``); ``409`` until done.
``GET /metrics``           Prometheus text rendering of the store metrics.
``GET /healthz``           ``{"ok": true, ...}`` liveness summary.
========================  ==================================================

Startup always calls :meth:`JobStore.recover` first, so a server killed
with ``SIGKILL`` resumes its in-flight jobs before accepting new ones —
the crash-safety contract lives in the store and the journals, not in
the process lifetime (docs/service.md).

Addresses: ``HOST:PORT`` binds TCP (port ``0`` picks a free port,
reported by :attr:`ServiceServer.address`); anything containing a ``/``
or ending in ``.sock`` binds a unix-domain socket at that path.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, List, Optional, Tuple
from urllib.parse import urlparse

from ..errors import ReproError
from ..obs import get_logger
from ..obs.events import prometheus_text
from .jobstore import JobStore, QueueFullError, ServiceError, UnknownJobError

_log = get_logger(__name__)

#: Largest request body accepted, a guard against memory-bomb posts.
MAX_BODY_BYTES = 8 * 1024 * 1024


def is_unix_address(address: str) -> bool:
    """Unix-socket addresses look like paths; TCP ones like HOST:PORT."""
    return "/" in address or address.endswith(".sock")


def split_tcp_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port)
    except ValueError as exc:
        raise ServiceError(
            f"invalid TCP address {address!r}; expected HOST:PORT"
        ) from exc


class _UnixHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a unix-domain socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, (str, os.PathLike)) and os.path.exists(path):
            os.unlink(path)
        # Skip the getnameinfo() machinery, meaningless for AF_UNIX.
        self.socket.bind(self.server_address)
        self.server_name = str(self.server_address)
        self.server_port = 0

    def client_address_string(self) -> str:  # pragma: no cover - logging
        return str(self.server_address)


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP request onto the server's JobStore."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The store is attached to the *server* object by ServiceServer.
    @property
    def store(self) -> JobStore:
        return self.server.job_store  # type: ignore[attr-defined]

    # -- plumbing --------------------------------------------------------
    def log_message(self, fmt: str, *args: object) -> None:
        _log.debug("http: " + fmt, *args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: object) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body)

    def _send_error(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length) if length else b""

    def _route(self) -> Tuple[str, List[str]]:
        path = urlparse(self.path).path
        return path, [part for part in path.split("/") if part]

    # -- methods ---------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        path, parts = self._route()
        if parts != ["v1", "jobs"]:
            self._send_error(404, "HTTP", f"no such endpoint {path!r}")
            return
        try:
            data = json.loads(self._read_body().decode("utf-8") or "{}")
            if not isinstance(data, dict):
                raise ServiceError("request body must be a JSON object")
            record, hit = self.store.submit(
                str(data.get("kind", "")),
                str(data.get("problem", "")),
                data.get("options") or {},
                data.get("fault"),
            )
        except QueueFullError as exc:
            self.send_response_only(429)
            self.send_header("Retry-After", "1")
            body = (
                json.dumps(
                    {"error": {"code": exc.code, "message": str(exc)}},
                    sort_keys=True,
                )
                + "\n"
            ).encode("utf-8")
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        except ReproError as exc:
            self._send_error(400, exc.code, str(exc))
            return
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error(400, "HTTP", f"bad request body: {exc}")
            return
        status = dict(record.as_dict())
        status["cached"] = hit
        self._send_json(202 if not hit else 200, status)

    def do_GET(self) -> None:  # noqa: N802
        path, parts = self._route()
        try:
            if parts == ["healthz"]:
                self._send_json(
                    200,
                    {
                        "ok": True,
                        "jobs": len(self.store.jobs()),
                        "queue_limit": self.store.queue_limit,
                    },
                )
            elif parts == ["metrics"]:
                text = prometheus_text(self.store.metrics.snapshot())
                self._send(200, text.encode("utf-8"), "text/plain")
            elif parts == ["v1", "jobs"]:
                self._send_json(
                    200,
                    {"jobs": [r.as_dict() for r in self.store.jobs()]},
                )
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send_json(200, self.store.status(parts[2]).as_dict())
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "result"
            ):
                self._send(200, self.store.result_bytes(parts[2]))
            else:
                self._send_error(404, "HTTP", f"no such endpoint {path!r}")
        except UnknownJobError as exc:
            self._send_error(404, exc.code, str(exc))
        except ServiceError as exc:
            self._send_error(409, exc.code, str(exc))

    def do_DELETE(self) -> None:  # noqa: N802
        path, parts = self._route()
        if len(parts) != 3 or parts[:2] != ["v1", "jobs"]:
            self._send_error(404, "HTTP", f"no such endpoint {path!r}")
            return
        try:
            cancelled = self.store.cancel(parts[2])
        except UnknownJobError as exc:
            self._send_error(404, exc.code, str(exc))
            return
        self._send_json(200, {"job": parts[2], "cancelled": cancelled})


class ServiceServer:
    """A running scheduling service: HTTP listener + worker threads.

    Args:
        store: The :class:`JobStore` to expose; :meth:`start` recovers
            its journaled jobs before accepting traffic.
        address: ``HOST:PORT`` (TCP, port 0 = ephemeral) or a
            unix-socket path (contains ``/`` or ends in ``.sock``).
        workers: Worker threads draining the job queue.
    """

    def __init__(
        self, store: JobStore, address: str = "127.0.0.1:0", *, workers: int = 1
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.requested_address = address
        self.workers = workers
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []
        self._serve_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The bound address (actual port for TCP port-0 requests)."""
        if self._httpd is None:
            return self.requested_address
        if isinstance(self._httpd, _UnixHTTPServer):
            return str(self._httpd.server_address)
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "ServiceServer":
        """Recover journaled jobs, bind, and start serving in threads."""
        recovered = self.store.recover()
        if recovered:
            _log.info("resuming %d journaled job(s)", recovered)
        if is_unix_address(self.requested_address):
            self._httpd = _UnixHTTPServer(
                self.requested_address, _Handler, bind_and_activate=True
            )
        else:
            host, port = split_tcp_address(self.requested_address)
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.job_store = self.store  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._serve_thread.start()
        _log.info(
            "repro serve listening on %s (%d worker thread(s))",
            self.address,
            self.workers,
        )
        return self

    def _worker_loop(self) -> None:
        while not self.store._closed:
            try:
                self.store.process_one(timeout=0.5)
            except Exception:  # noqa: BLE001 - keep the worker alive
                _log.exception("job worker crashed; continuing")

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`shutdown`."""
        assert self._serve_thread is not None, "call start() first"
        try:
            while self._serve_thread.is_alive():
                self._serve_thread.join(1.0)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting requests and wake the workers."""
        self.store.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if isinstance(self._httpd, _UnixHTTPServer):
                try:
                    os.unlink(str(self._httpd.server_address))
                except OSError:
                    pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def serve(
    state_dir: str,
    address: str = "127.0.0.1:0",
    *,
    workers: int = 1,
    **store_kwargs: Any,
) -> ServiceServer:
    """Convenience: build a store, start a server, return it running."""
    store = JobStore(state_dir, **store_kwargs)
    return ServiceServer(store, address, workers=workers).start()
