"""Content-addressed identity of scheduling-service jobs.

A job's :func:`cache_key` is a SHA-256 over a canonical JSON envelope of
*what is being computed*: the job kind, the problem in canonical ``.sys``
form, and the scheduler options.  Two submissions with the same key are
the same computation — the schedulers are deterministic — so the service
answers the second one from its result cache with byte-identical payload
bytes instead of rescheduling.

Canonicalization is a parse→re-emit round trip
(:func:`canonical_problem_text`): comments, blank lines, indentation,
and directive spelling variations disappear, and the emitted directive
order is a function of the parsed document alone.  Texts that differ
only in whitespace or comments therefore hash identically, while any
*semantic* change — a period, a deadline, a resource's latency or area,
a scope group, an extra edge — changes the canonical text and with it
the key.  Reordering operations or edges is deliberately **not**
normalized away: graph construction order feeds the schedulers'
deterministic tie-breaks, so differently-ordered texts are genuinely
different computations.

The option dict is canonicalized by a JSON round trip with sorted keys;
options that do not affect the result (observability toggles, fault
directives for the chaos harness) must be kept out of the options dict
by the caller — :mod:`repro.service.jobstore` does.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Optional

from ..errors import SpecificationError

__all__ = [
    "CACHE_KEY_FORMAT",
    "cache_key",
    "canonical_options",
    "canonical_problem_text",
]

#: Version tag folded into every key; bump on incompatible envelope or
#: payload changes so stale caches miss instead of replaying old bytes.
CACHE_KEY_FORMAT = "repro-job/1"


def canonical_problem_text(text: str) -> str:
    """The canonical ``.sys`` spelling of ``text`` (parse + re-emit).

    Raises the parser's own ``SPEC``/``GRAPH``-coded errors for invalid
    input — an unparseable problem has no canonical form and no key.
    """
    from ..api import dumps_problem, loads_problem

    return dumps_problem(loads_problem(text))


def canonical_options(options: Optional[Mapping[str, object]]) -> dict:
    """A plain, JSON-round-tripped copy of the options mapping.

    Defaults equal to "absent" are the caller's responsibility; this
    only guarantees a stable, comparable, hashable representation and
    rejects values JSON cannot express.
    """
    if not options:
        return {}
    try:
        return json.loads(json.dumps(dict(options), sort_keys=True))
    except (TypeError, ValueError) as exc:
        raise SpecificationError(
            f"job options are not JSON-serializable: {exc}"
        ) from exc


def cache_key(
    kind: str,
    problem_text: str,
    options: Optional[Mapping[str, object]] = None,
) -> str:
    """The content hash identifying one service job.

    ``kind`` is the job kind (``schedule`` / ``sweep`` / ``certify``),
    ``problem_text`` any ``.sys`` spelling of the problem (periods and
    the resource library live inside it), ``options`` the
    result-affecting scheduler options.
    """
    envelope = {
        "format": CACHE_KEY_FORMAT,
        "kind": kind,
        "problem": canonical_problem_text(problem_text),
        "options": canonical_options(options),
    }
    blob = json.dumps(
        envelope, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
