"""Structured diagnostics: stable codes, severities, and reports.

A :class:`Diagnostic` is one finding of the preflight validation pass
(:mod:`repro.validation.preflight`): a stable code (keyed in
:data:`CODES`, documented in docs/robustness.md), a severity, an
optional process/block/op location, the human-readable message, and a
fix hint.  A :class:`DiagnosticReport` collects findings and maps them
to the ``repro check`` exit-code convention (0 ok / 1 warnings /
2 errors).

Codes are grouped by prefix:

* ``SYS``    — document-level problems (parse failures, empty systems);
* ``GRAPH``  — dataflow-graph structure (cycles, dangling edges);
* ``LIB``    — resource-library completeness and sanity;
* ``TIME``   — timing feasibility (critical path vs. deadline, C1);
* ``SCOPE``  — global scope assignments (S1);
* ``PERIOD`` — period assignments and the eq. 2-3 grid rules (S2).

Numbers below 100 are errors (scheduling would fail or be meaningless),
1xx are warnings (scheduling works but the spec looks mistaken), and
2xx are informational notes.  The 3xx block is reserved for the
residue-pressure analysis (:mod:`repro.analysis.absint`) and carries
per-code severities: the abstract interpretation grades its findings by
how much slack the intervals prove, not by code number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Severity levels, ordered weakest to strongest.
SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

_SEVERITY_RANK = {SEVERITY_INFO: 0, SEVERITY_WARNING: 1, SEVERITY_ERROR: 2}

#: Registry of every diagnostic code with its severity and one-line title.
#: The table in docs/robustness.md is generated from this mapping; codes
#: are append-only — never renumber or reuse one.
CODES: Dict[str, Dict[str, str]] = {
    "SYS001": {
        "severity": SEVERITY_ERROR,
        "title": "document does not parse",
    },
    "SYS002": {
        "severity": SEVERITY_ERROR,
        "title": "system declares no processes",
    },
    "SYS003": {
        "severity": SEVERITY_ERROR,
        "title": "system construction failed",
    },
    "GRAPH001": {
        "severity": SEVERITY_ERROR,
        "title": "dataflow graph contains a cycle",
    },
    "LIB001": {
        "severity": SEVERITY_ERROR,
        "title": "operation kind not covered by the resource library",
    },
    "LIB002": {
        "severity": SEVERITY_ERROR,
        "title": "resource declaration is invalid",
    },
    "LIB101": {
        "severity": SEVERITY_WARNING,
        "title": "resource type declared but never used",
    },
    "TIME001": {
        "severity": SEVERITY_ERROR,
        "title": "critical path exceeds the block deadline (C1 infeasible)",
    },
    "SCOPE001": {
        "severity": SEVERITY_ERROR,
        "title": "global group names an unknown process",
    },
    "SCOPE002": {
        "severity": SEVERITY_ERROR,
        "title": "global group needs at least two processes",
    },
    "SCOPE003": {
        "severity": SEVERITY_ERROR,
        "title": "group member never uses the global type",
    },
    "SCOPE004": {
        "severity": SEVERITY_ERROR,
        "title": "global directive names an unknown resource type",
    },
    "PERIOD001": {
        "severity": SEVERITY_ERROR,
        "title": "period declared for a non-global type",
    },
    "PERIOD002": {
        "severity": SEVERITY_ERROR,
        "title": "period must be a positive integer",
    },
    "PERIOD101": {
        "severity": SEVERITY_WARNING,
        "title": "non-harmonic period set for a process (eq. 3)",
    },
    "PERIOD102": {
        "severity": SEVERITY_WARNING,
        "title": "process start grid exceeds its smallest block deadline",
    },
    "PERIOD103": {
        "severity": SEVERITY_WARNING,
        "title": "period exceeds a sharing block's deadline (never folds)",
    },
    "PERIOD201": {
        "severity": SEVERITY_INFO,
        "title": "global type has no period directive (heuristic default)",
    },
    "LINT001": {
        "severity": SEVERITY_ERROR,
        "title": "operation timeframe is infeasible (ASAP exceeds ALAP)",
    },
    "LINT101": {
        "severity": SEVERITY_WARNING,
        "title": "dead operation: result never consumed or stored",
    },
    "LINT102": {
        "severity": SEVERITY_WARNING,
        "title": "redundant transitive dependence edge",
    },
    "LINT103": {
        "severity": SEVERITY_WARNING,
        "title": "pool allocation exceeds the proven peak demand",
    },
    "LINT201": {
        "severity": SEVERITY_INFO,
        "title": "block is fully rigid (every timeframe is a single slot)",
    },
    "LINT202": {
        "severity": SEVERITY_INFO,
        "title": "multicycle pool is sized above the peak slot demand",
    },
    "LINT203": {
        "severity": SEVERITY_INFO,
        "title": "period slots never authorized for the sharing group",
    },
    "LINT301": {
        "severity": SEVERITY_WARNING,
        "title": "pressure hotspot: every admissible schedule saturates the pool",
    },
    "LINT302": {
        "severity": SEVERITY_INFO,
        "title": "residue class unreachable by any grid-admissible schedule",
    },
    "LINT303": {
        "severity": SEVERITY_INFO,
        "title": "pool interval-proven over-provisioned for every schedule",
    },
}


def codes_table() -> str:
    """The diagnostic-code registry as a markdown table.

    Source of the tables embedded in docs/robustness.md and
    docs/static-analysis.md (``python -m repro.validation.diagnostics
    --table``); a drift test keeps the docs in sync with the registry.
    """
    lines = [
        "| Code | Severity | Meaning |",
        "| --- | --- | --- |",
    ]
    for code, entry in CODES.items():
        lines.append(f"| `{code}` | {entry['severity']} | {entry['title']} |")
    return "\n".join(lines)


@dataclass(frozen=True)
class Diagnostic:
    """One structured preflight finding."""

    code: str
    message: str
    severity: str = SEVERITY_ERROR
    process: Optional[str] = None
    block: Optional[str] = None
    op: Optional[str] = None
    hint: Optional[str] = None

    @property
    def location(self) -> str:
        """``process/block/op`` path, as far as it is known."""
        parts = [p for p in (self.process, self.block, self.op) if p]
        return "/".join(parts)

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        text = f"{self.severity} {self.code}{where}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> Dict[str, object]:
        """Stable machine-readable record (``--format json``)."""
        record: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("process", "block", "op", "hint"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        return record


@dataclass
class DiagnosticReport:
    """Findings of one preflight (or lint) pass over one problem."""

    source: str = "<memory>"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Pass name shown in :meth:`render` ("check", "lint", ...).
    label: str = "check"

    def add(
        self,
        code: str,
        message: str,
        *,
        process: Optional[str] = None,
        block: Optional[str] = None,
        op: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> Diagnostic:
        """Record a finding; its severity comes from the :data:`CODES` registry."""
        try:
            severity = CODES[code]["severity"]
        except KeyError:
            raise KeyError(f"unregistered diagnostic code {code!r}") from None
        diagnostic = Diagnostic(
            code=code,
            message=message,
            severity=severity,
            process=process,
            block=block,
            op=op,
            hint=hint,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(SEVERITY_ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(SEVERITY_WARNING)

    @property
    def ok(self) -> bool:
        """No errors (warnings and notes are allowed)."""
        return not self.errors

    @property
    def codes(self) -> List[str]:
        """Codes of all findings, in report order."""
        return [d.code for d in self.diagnostics]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """``repro check`` convention: 0 ok, 1 warnings only, 2 errors."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Machine-readable report: source, findings, counts, exit code."""
        return {
            "source": self.source,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "notes": len(self.by_severity(SEVERITY_INFO)),
            },
            "exit_code": self.exit_code,
        }

    def render(self) -> str:
        """Human-readable report, strongest findings first."""
        lines = [f"{self.label} {self.source}:"]
        ordered = sorted(
            self.diagnostics,
            key=lambda d: -_SEVERITY_RANK.get(d.severity, 0),
        )
        for diagnostic in ordered:
            lines.append("  " + diagnostic.render().replace("\n", "\n  "))
        counts = (
            f"{len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.by_severity(SEVERITY_INFO))} notes"
        )
        lines.append(f"  {counts}" if self.diagnostics else f"  ok ({counts})")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.validation.diagnostics",
        description="Inspect the diagnostic-code registry.",
    )
    parser.add_argument(
        "--table",
        action="store_true",
        help="emit the code registry as a markdown table",
    )
    args = parser.parse_args(argv)
    if args.table:
        print(codes_table())
        return 0
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())
