"""Preflight validation, run budgets, and fuzzing for the repro library.

Three robustness facilities live here (see docs/robustness.md):

* :mod:`~repro.validation.preflight` — ``validate_problem()`` and
  friends: structured :class:`Diagnostic` findings with stable codes,
  surfaced by ``repro check`` and run before ``schedule``/``sweep``;
* :mod:`~repro.validation.budget` — :class:`RunBudget` watchdogs that
  bound scheduler work and trigger graceful list-scheduling degradation;
* :mod:`~repro.validation.fuzz` — the mutation fuzz harness backing
  ``tests/fuzz`` and ``benchmarks/fuzz_runner.py``.
"""

from .budget import BudgetTracker, RunBudget
from .fuzz import (
    OUTCOME_CRASHED,
    OUTCOME_DIVERGED,
    OUTCOME_REJECTED,
    OUTCOME_SCHEDULED,
    FuzzOutcome,
    differential_text,
    exercise_text,
    mutate_text,
)
from .diagnostics import (
    CODES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    DiagnosticReport,
)
from .preflight import (
    validate_document,
    validate_path,
    validate_problem,
    validate_text,
)

__all__ = [
    "BudgetTracker",
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "FuzzOutcome",
    "OUTCOME_CRASHED",
    "OUTCOME_DIVERGED",
    "OUTCOME_REJECTED",
    "OUTCOME_SCHEDULED",
    "RunBudget",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "differential_text",
    "exercise_text",
    "mutate_text",
    "validate_document",
    "validate_path",
    "validate_problem",
    "validate_text",
]
