"""Mutation fuzzing for the ``.sys`` front end and the schedulers.

:func:`mutate_text` derives a corrupted document from a valid one via
classic text mutations (token deletion / swap / duplication, numeric
perturbation, line shuffling, truncation).  :func:`exercise_text` then
drives the full pipeline — parse, build, schedule under a tight
:class:`~repro.validation.budget.RunBudget`, verify — and classifies the
outcome.  The robustness invariant (docs/robustness.md) is:

    every input is either **rejected** with a :class:`ReproError`
    subclass, or **scheduled and verified** — never a bare
    ``KeyError``/``IndexError``/segfault-style escape, and never a hang.

``tests/fuzz`` asserts the invariant over a bounded corpus with a fixed
seed; ``benchmarks/fuzz_runner.py`` runs larger campaigns with a
per-input watchdog and saves crashing inputs for triage.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import ReproError
from .budget import RunBudget

#: Outcome labels of :func:`exercise_text` / :func:`differential_text`.
OUTCOME_SCHEDULED = "scheduled"  # parsed, scheduled, verified
OUTCOME_REJECTED = "rejected"  # a ReproError subclass, as designed
OUTCOME_CRASHED = "crashed"  # non-ReproError escape: a genuine bug
OUTCOME_DIVERGED = "diverged"  # static certifier vs simulation disagree

_NUMBER = re.compile(r"\d+")


@dataclass(frozen=True)
class FuzzOutcome:
    """Classification of one fuzzed input."""

    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True unless the input exposed a robustness bug."""
        return self.outcome not in (OUTCOME_CRASHED, OUTCOME_DIVERGED)


# ----------------------------------------------------------------------
# Mutations
# ----------------------------------------------------------------------
def _delete_token(lines: List[str], rng: random.Random) -> None:
    idx = rng.randrange(len(lines))
    tokens = lines[idx].split()
    if tokens:
        tokens.pop(rng.randrange(len(tokens)))
        lines[idx] = " ".join(tokens)


def _duplicate_token(lines: List[str], rng: random.Random) -> None:
    idx = rng.randrange(len(lines))
    tokens = lines[idx].split()
    if tokens:
        pos = rng.randrange(len(tokens))
        tokens.insert(pos, tokens[pos])
        lines[idx] = " ".join(tokens)


def _swap_tokens(lines: List[str], rng: random.Random) -> None:
    idx = rng.randrange(len(lines))
    tokens = lines[idx].split()
    if len(tokens) >= 2:
        a, b = rng.sample(range(len(tokens)), 2)
        tokens[a], tokens[b] = tokens[b], tokens[a]
        lines[idx] = " ".join(tokens)


def _perturb_number(lines: List[str], rng: random.Random) -> None:
    candidates = [i for i, line in enumerate(lines) if _NUMBER.search(line)]
    if not candidates:
        return
    idx = rng.choice(candidates)
    matches = list(_NUMBER.finditer(lines[idx]))
    match = rng.choice(matches)
    value = int(match.group())
    new = rng.choice(
        [0, -1, value + 1, max(0, value - 1), value * 1000, 10**9, 10**15]
    )
    lines[idx] = lines[idx][: match.start()] + str(new) + lines[idx][match.end():]


def _delete_line(lines: List[str], rng: random.Random) -> None:
    lines.pop(rng.randrange(len(lines)))


def _duplicate_line(lines: List[str], rng: random.Random) -> None:
    idx = rng.randrange(len(lines))
    lines.insert(idx, lines[idx])


def _swap_lines(lines: List[str], rng: random.Random) -> None:
    if len(lines) >= 2:
        a, b = rng.sample(range(len(lines)), 2)
        lines[a], lines[b] = lines[b], lines[a]


def _truncate(lines: List[str], rng: random.Random) -> None:
    keep = rng.randrange(len(lines))
    del lines[keep:]


_MUTATIONS: List[Callable[[List[str], random.Random], None]] = [
    _delete_token,
    _duplicate_token,
    _swap_tokens,
    _perturb_number,
    _delete_line,
    _duplicate_line,
    _swap_lines,
    _truncate,
]


def mutate_text(text: str, rng: random.Random, *, rounds: Optional[int] = None) -> str:
    """Apply 1-3 random mutations (or exactly ``rounds``) to ``text``."""
    lines = text.splitlines()
    if not lines:
        return text
    count = rng.randint(1, 3) if rounds is None else rounds
    for _ in range(count):
        if not lines:
            break
        rng.choice(_MUTATIONS)(lines, rng)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The invariant driver
# ----------------------------------------------------------------------
def exercise_text(
    text: str,
    *,
    budget: Optional[RunBudget] = None,
) -> FuzzOutcome:
    """Run one input through parse → build → schedule → verify.

    Never raises: every escape path is folded into the returned
    :class:`FuzzOutcome`.  Hang protection is the caller's job (the
    schedulers honour ``budget``; the fuzz runner adds a ``SIGALRM``
    watchdog above it for everything else).
    """
    from ..api import problem_from_document
    from ..core.verify import verify
    from ..ir import systemio

    if budget is None:
        budget = RunBudget(max_iterations=20_000, wall_deadline=10.0)
    try:
        document = systemio.loads(text)
        problem = problem_from_document(document)
        result = problem.schedule(budget=budget)
        verify(result)
    except ReproError as exc:
        return FuzzOutcome(
            OUTCOME_REJECTED, f"{type(exc).__name__} [{exc.code}]: {exc}"
        )
    except Exception as exc:  # noqa: BLE001 - the invariant under test
        return FuzzOutcome(OUTCOME_CRASHED, f"{type(exc).__name__}: {exc}")
    return FuzzOutcome(OUTCOME_SCHEDULED, f"area {result.total_area():g}")


def differential_text(
    text: str,
    *,
    budget: Optional[RunBudget] = None,
    seeds: int = 10,
    cycles: int = 400,
    trigger: float = 0.25,
) -> FuzzOutcome:
    """Differential oracle: certifier verdict vs multi-seed simulation.

    Runs the pipeline like :func:`exercise_text`; when the input
    schedules, the result is statically certified (deployed offsets,
    derived pools) and dynamically simulated ``seeds`` times.  The two
    oracles must agree — a schedule the certifier proves safe must
    survive every randomized simulation, and on self-derived pools the
    certifier must never refute.  Disagreement is the ``diverged``
    outcome (``ok`` is False): one of the two sides is wrong.
    """
    from ..analysis.static import certify
    from ..api import problem_from_document
    from ..ir import systemio
    from ..sim.simulator import SystemSimulator

    if budget is None:
        budget = RunBudget(max_iterations=20_000, wall_deadline=10.0)
    try:
        document = systemio.loads(text)
        problem = problem_from_document(document)
        result = problem.schedule(budget=budget)
        certificate = certify(result)
        simulator = SystemSimulator(result, trigger_probability=trigger)
        failing = [
            seed
            for seed in range(seeds)
            if not simulator.run(cycles, seed=seed).ok
        ]
    except ReproError as exc:
        return FuzzOutcome(
            OUTCOME_REJECTED, f"{type(exc).__name__} [{exc.code}]: {exc}"
        )
    except Exception as exc:  # noqa: BLE001 - the invariant under test
        return FuzzOutcome(OUTCOME_CRASHED, f"{type(exc).__name__}: {exc}")
    if not certificate.safe:
        return FuzzOutcome(
            OUTCOME_DIVERGED,
            "certifier refutes the schedule's own derived pools: "
            + (
                certificate.counterexample.triple()
                if certificate.counterexample
                else certificate.verdict
            ),
        )
    if failing:
        return FuzzOutcome(
            OUTCOME_DIVERGED,
            f"certificate is safe but simulation seeds {failing} hit "
            "conflicts",
        )
    return FuzzOutcome(
        OUTCOME_SCHEDULED,
        f"safe and {seeds} seed(s) conflict-free",
    )
