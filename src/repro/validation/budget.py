"""Run budgets and watchdogs for the iterative schedulers.

A :class:`RunBudget` declares how much work a scheduling run may spend:
an iteration ceiling, a wall-clock deadline, and an oscillation window.
A :class:`BudgetTracker` is the per-run mutable companion the schedulers
tick once per reduction/improvement step; the first tick that trips a
limit returns a human-readable reason string, and the scheduler reacts
by degrading to the list-scheduling fallback (result tagged
``degraded=True``) instead of hanging or raising.

Oscillation detection hashes the scheduler's visible state each tick
and keeps a sliding window of recent hashes; revisiting a state that is
still inside the window means the run is cycling through the same
configurations without making progress (IFDS can do this when two
blocks keep stealing the same instance back and forth).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RunBudget:
    """Declarative work limits for one scheduling run.

    ``max_iterations``
        Ceiling on scheduler ticks (``None`` = unlimited).
    ``wall_deadline``
        Wall-clock seconds the run may take (``None`` = unlimited).
    ``oscillation_window``
        How many recent state hashes to remember; a state seen twice
        within the window trips the detector.  ``0`` disables it.
    """

    max_iterations: Optional[int] = None
    wall_deadline: Optional[float] = None
    oscillation_window: int = 64

    def __post_init__(self) -> None:
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1 or None")
        if self.wall_deadline is not None and self.wall_deadline <= 0:
            raise ValueError("wall_deadline must be positive or None")
        if self.oscillation_window < 0:
            raise ValueError("oscillation_window must be >= 0")

    def tracker(self) -> "BudgetTracker":
        """Start the clock: build the mutable per-run companion."""
        return BudgetTracker(self)


class BudgetTracker:
    """Mutable per-run state for one :class:`RunBudget`.

    Schedulers call :meth:`tick` once per iteration; the first call that
    exhausts the budget returns the reason string, and every later call
    keeps returning it (so nested loops all observe the stop).
    """

    def __init__(self, budget: RunBudget) -> None:
        self.budget = budget
        self.started = time.perf_counter()
        self.iterations = 0
        self.exhausted_reason: Optional[str] = None
        # Sliding window of recently seen state hashes (insertion order).
        self._window: "OrderedDict[int, None]" = OrderedDict()

    def tick(self, state_hash: Optional[int] = None) -> Optional[str]:
        """Account one iteration; return a reason string once exhausted."""
        if self.exhausted_reason is not None:
            return self.exhausted_reason
        self.iterations += 1
        budget = self.budget
        if (
            budget.max_iterations is not None
            and self.iterations > budget.max_iterations
        ):
            self.exhausted_reason = (
                f"iteration budget exhausted ({budget.max_iterations})"
            )
        elif (
            budget.wall_deadline is not None
            and self.elapsed() > budget.wall_deadline
        ):
            self.exhausted_reason = (
                f"wall-clock budget exhausted ({budget.wall_deadline:g}s)"
            )
        elif state_hash is not None and budget.oscillation_window > 0:
            if state_hash in self._window:
                self.exhausted_reason = (
                    "oscillation detected (state revisited within "
                    f"{budget.oscillation_window} iterations)"
                )
            else:
                self._window[state_hash] = None
                while len(self._window) > budget.oscillation_window:
                    self._window.popitem(last=False)
        return self.exhausted_reason

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason is not None
