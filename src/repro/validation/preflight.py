"""Preflight validation: diagnose a scheduling problem before running it.

:func:`validate_text` / :func:`validate_path` check a ``.sys`` document,
:func:`validate_problem` a live :class:`repro.api.Problem`; all three
produce a :class:`~repro.validation.diagnostics.DiagnosticReport` and
never raise on bad input — every defect becomes a structured
:class:`~repro.validation.diagnostics.Diagnostic` with a stable code.

The pass covers the failure classes a raw ``schedule`` run would only
surface as a traceback deep inside the scheduler:

* document parses and builds (``SYS*``, ``GRAPH*``);
* every operation kind has a resource type (``LIB*``);
* every block's critical path fits its deadline — ASAP/ALAP
  feasibility, the paper's condition C1 (``TIME*``);
* global scope groups are well-formed — S1, condition C2's "sharing
  processes" model (``SCOPE*``);
* period assignments respect the eq. 2-3 grid rules (``PERIOD*``).

The CLI exposes this as ``repro check FILE`` and runs it automatically
before ``schedule`` and ``sweep``.  See docs/robustness.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from ..core.periods import is_harmonic, lcm_all
from ..errors import GraphError, ReproError, SpecificationError
from ..ir.process import SystemSpec
from ..ir.systemio import SystemDocument
from ..resources.library import ResourceLibrary, default_library
from ..resources.types import resource_type
from .diagnostics import DiagnosticReport

if TYPE_CHECKING:
    from ..api import Problem


def validate_path(path: str) -> DiagnosticReport:
    """Validate a ``.sys`` file on disk.  Never raises on bad content."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_text(handle.read(), source=str(path))


def validate_text(text: str, *, source: str = "<memory>") -> DiagnosticReport:
    """Validate ``.sys`` text; parse failures become ``SYS001`` findings."""
    from ..ir import systemio

    report = DiagnosticReport(source=source)
    try:
        document = systemio.loads(text)
    except ReproError as exc:
        # Cycles are rejected at edge-insertion time, i.e. during the
        # parse — classify them as the graph defect they are.
        if "cycle" in str(exc):
            report.add(
                "GRAPH001",
                str(exc),
                hint="remove the named edge; dataflow must be acyclic",
            )
        else:
            report.add(
                "SYS001",
                str(exc),
                hint="fix the named line; see docs/sys-format.md for the "
                "grammar",
            )
        return report
    return validate_document(document, report=report)


def validate_document(
    document: SystemDocument, *, report: Optional[DiagnosticReport] = None
) -> DiagnosticReport:
    """Validate a parsed document without building a live problem."""
    if report is None:
        report = DiagnosticReport(source=document.name)

    library = _build_library(document, report)
    system = _build_system(document, report)
    if system is None or library is None:
        return report

    if document.resources:
        used = {kind for kind in system.kinds_used()}
        for rtype in library.types:
            if not any(kind in used for kind in rtype.kinds):
                report.add(
                    "LIB101",
                    f"resource type {rtype.name!r} is never used by the system",
                    hint="drop the directive or add operations of its kinds",
                )

    _validate_semantics(report, system, library, document.globals, document.periods)
    return report


def validate_problem(
    problem: "Problem", *, report: Optional[DiagnosticReport] = None
) -> DiagnosticReport:
    """Validate a live :class:`repro.api.Problem` (API entry point).

    Problems reachable through :func:`repro.api.load_problem` already
    passed the raising build checks, so on those this surfaces mostly
    warnings (grid spacing, harmonics, folding); hand-assembled problems
    get the full error coverage.
    """
    if report is None:
        report = DiagnosticReport(source=problem.system.name)
    globals_map = {
        type_name: problem.assignment.group(type_name)
        for type_name in problem.assignment.global_types
    }
    _validate_semantics(
        report,
        problem.system,
        problem.library,
        globals_map,
        problem.periods.as_dict,
    )
    return report


# ----------------------------------------------------------------------
# Build stages (document level)
# ----------------------------------------------------------------------
def _build_library(
    document: SystemDocument, report: DiagnosticReport
) -> Optional[ResourceLibrary]:
    if not document.resources:
        return default_library()
    library = ResourceLibrary()
    for name, options in document.resources.items():
        try:
            library.add(
                resource_type(
                    name,
                    options["kinds"],
                    latency=int(options["latency"]),
                    area=float(options["area"]),
                    pipelined=bool(options["pipelined"]),
                    initiation_interval=int(options["ii"]),
                )
            )
        except (ReproError, ValueError) as exc:
            report.add(
                "LIB002",
                f"resource {name!r}: {exc}",
                hint="latency/ii must be >= 1, area >= 0, kinds unique "
                "across resources",
            )
    return library


def _build_system(
    document: SystemDocument, report: DiagnosticReport
) -> Optional[SystemSpec]:
    if not document.process_order:
        report.add(
            "SYS002",
            "document declares no processes",
            hint="add at least one 'process NAME' with a block",
        )
        return None
    try:
        return document.build_system()
    except (GraphError, SpecificationError) as exc:
        if "cycle" in str(exc):
            report.add("GRAPH001", str(exc))
        else:
            report.add(
                "SYS003",
                str(exc),
                hint="every process needs >= 1 block, every block >= 1 "
                "operation",
            )
        return None


# ----------------------------------------------------------------------
# Semantic checks (shared by document and live-problem entry points)
# ----------------------------------------------------------------------
def _validate_semantics(
    report: DiagnosticReport,
    system: SystemSpec,
    library: ResourceLibrary,
    globals_map: Mapping[str, Sequence[str]],
    periods_map: Mapping[str, int],
) -> None:
    _check_graphs(report, system)
    covered = _check_coverage(report, system, library)
    _check_deadlines(report, system, library, covered)
    groups = _check_scopes(report, system, library, globals_map)
    check_period_grid(report, system, globals_map, groups, periods_map)


def _check_graphs(report: DiagnosticReport, system: SystemSpec) -> None:
    for process, block in system.iter_blocks():
        try:
            block.graph.validate()
        except GraphError as exc:
            code = "GRAPH001" if "cycle" in str(exc) else "SYS003"
            report.add(
                code, str(exc), process=process.name, block=block.name
            )


def _check_coverage(
    report: DiagnosticReport, system: SystemSpec, library: ResourceLibrary
) -> Dict[str, bool]:
    """Per-``process/block`` flag: every kind has a resource type."""
    covered: Dict[str, bool] = {}
    for process, block in system.iter_blocks():
        ok = True
        flagged = set()
        for op in block.graph:
            if op.kind in flagged:
                continue
            try:
                library.type_for(op.kind)
            except ReproError:
                ok = False
                flagged.add(op.kind)
                report.add(
                    "LIB001",
                    f"no resource type executes kind {op.kind.value!r}",
                    process=process.name,
                    block=block.name,
                    op=op.op_id,
                    hint=f"declare a resource with kinds={op.kind.value}",
                )
        covered[f"{process.name}/{block.name}"] = ok
    return covered


def _check_deadlines(
    report: DiagnosticReport,
    system: SystemSpec,
    library: ResourceLibrary,
    covered: Mapping[str, bool],
) -> None:
    for process, block in system.iter_blocks():
        if not covered.get(f"{process.name}/{block.name}", False):
            continue  # critical path undefined without latencies
        try:
            needed = block.graph.critical_path_length(library.latency_of)
        except GraphError:
            continue  # already reported as a graph finding
        if needed > block.deadline:
            report.add(
                "TIME001",
                f"critical path {needed} exceeds deadline {block.deadline}",
                process=process.name,
                block=block.name,
                hint=f"raise the deadline to >= {needed} or split the block",
            )


def _check_scopes(
    report: DiagnosticReport,
    system: SystemSpec,
    library: ResourceLibrary,
    globals_map: Mapping[str, Sequence[str]],
) -> Dict[str, List[str]]:
    """Validate global groups; returns the well-formed subset."""
    valid: Dict[str, List[str]] = {}
    for type_name, group in globals_map.items():
        if type_name not in library:
            report.add(
                "SCOPE004",
                f"global directive names unknown resource type {type_name!r}",
                hint=f"known types: {', '.join(library.type_names)}",
            )
            continue
        members = list(dict.fromkeys(group))
        if len(members) < 2:
            report.add(
                "SCOPE002",
                f"global type {type_name!r} is shared by "
                f"{len(members)} process(es); sharing needs >= 2",
                hint="a single-process 'global' is just a local assignment",
            )
            continue
        rtype = library.type(type_name)
        users = {
            process.name
            for process in system.processes
            if any(kind in process.kinds_used() for kind in rtype.kinds)
        }
        ok = True
        for process_name in members:
            if process_name not in system:
                ok = False
                report.add(
                    "SCOPE001",
                    f"global type {type_name!r}: unknown process "
                    f"{process_name!r}",
                    process=process_name,
                )
            elif process_name not in users:
                ok = False
                report.add(
                    "SCOPE003",
                    f"global type {type_name!r}: process {process_name!r} "
                    f"contains no operation executed by this type",
                    process=process_name,
                    hint="drop the process from the group or fix the kinds",
                )
        if ok:
            valid[type_name] = members
    return valid


def check_period_grid(
    report: DiagnosticReport,
    system: SystemSpec,
    globals_map: Mapping[str, Sequence[str]],
    groups: Mapping[str, Sequence[str]],
    periods_map: Mapping[str, int],
) -> None:
    """Eq. 2-3 period/grid rules (``PERIOD*``), shared with the IR lint.

    ``globals_map`` is every declared global group, ``groups`` the
    well-formed subset whose periods are worth checking (pass the same
    mapping twice when linting an already-built problem).
    """
    for type_name, period in periods_map.items():
        if type_name not in globals_map:
            report.add(
                "PERIOD001",
                f"period declared for non-global type {type_name!r}",
                hint="add a matching 'global' directive or drop the period",
            )
        elif type_name not in groups:
            pass  # the group itself was flagged; period checks are moot
        elif period < 1:
            report.add(
                "PERIOD002",
                f"type {type_name!r}: period must be >= 1, got {period}",
            )

    effective: Dict[str, int] = {}
    for type_name, group in groups.items():
        declared = periods_map.get(type_name)
        if declared is not None and declared >= 1:
            effective[type_name] = declared
            min_deadline = _min_group_deadline(system, group)
            if min_deadline is not None and declared > min_deadline:
                report.add(
                    "PERIOD103",
                    f"type {type_name!r}: period {declared} exceeds the "
                    f"smallest sharing-block deadline {min_deadline}, so no "
                    "block ever folds over it",
                    hint=f"use a period <= {min_deadline}",
                )
        elif declared is None:
            suggested = _min_group_deadline(system, group)
            if suggested is not None:
                effective[type_name] = suggested
                report.add(
                    "PERIOD201",
                    f"type {type_name!r} has no period directive; the "
                    f"min-deadline heuristic will pick {suggested}",
                    hint=f"pin it with 'period {type_name} {suggested}'",
                )

    # Per-process grid rules (eq. 3): harmonic periods, grid <= deadline.
    for process in system.processes:
        type_names = [
            t for t, group in groups.items()
            if process.name in group and t in effective
        ]
        if not type_names:
            continue
        values = [effective[t] for t in type_names]
        if not is_harmonic(values):
            report.add(
                "PERIOD101",
                f"periods {dict(zip(type_names, values))} are not a divisor "
                "chain; the start grid inflates to their lcm",
                process=process.name,
                hint="prefer harmonic periods (each divides the next)",
            )
        grid = lcm_all(values)
        bound = min(block.deadline for block in process.blocks)
        if grid > bound:
            report.add(
                "PERIOD102",
                f"start grid {grid} exceeds the smallest block deadline "
                f"{bound}; the process can be frozen longer than a block "
                "runs",
                process=process.name,
                hint="shrink the periods or raise the deadlines",
            )


def _min_group_deadline(
    system: SystemSpec, group: Sequence[str]
) -> Optional[int]:
    deadlines = [
        block.deadline
        for process_name in group
        if process_name in system
        for block in system.process(process_name).blocks
    ]
    return min(deadlines) if deadlines else None
