#!/usr/bin/env python
"""Reactive processes and unbounded loops: the case merging cannot handle.

Two event-triggered FIR-filter processes and one lattice-filter loop body
with unbounded iteration count share a single multiplier pool.  The static
schedule is exercised by the cycle-accurate simulator with randomized
spontaneous triggers; the run demonstrates the paper's central claim: the
periodic access authorizations keep every interleaving conflict-free with
no runtime arbiter.

Run:  python examples/reactive_loops.py
"""

from repro import (
    Block,
    ModuloSystemScheduler,
    PeriodAssignment,
    Process,
    ResourceAssignment,
    SystemSpec,
    SystemSimulator,
    default_library,
)
from repro.workloads import ar_lattice, fir_filter


def main() -> None:
    library = default_library()
    system = SystemSpec(name="reactive")

    for name in ("front_end", "back_end"):
        process = Process(name=name)
        process.add_block(
            Block(name="fir", graph=fir_filter(6, name=f"{name}-fir"), deadline=12)
        )
        system.add_process(process)

    looper = Process(name="tracker")
    looper.add_block(
        Block(
            name="lattice",
            graph=ar_lattice(2, name="tracker-lattice"),
            deadline=12,
            repeats=True,  # loop body, unbounded iteration count
        )
    )
    system.add_process(looper)

    assignment = ResourceAssignment(library)
    assignment.make_global(
        "multiplier", ["front_end", "back_end", "tracker"]
    )
    periods = PeriodAssignment({"multiplier": 6})

    result = ModuloSystemScheduler(library).schedule(system, assignment, periods)
    print(result.summary())
    from repro import OpKind

    mult_ops = sum(
        len(block.graph.operations_of_kind(OpKind.MUL))
        for __, block in system.iter_blocks()
    )
    print(
        f"multiplier pool: {result.global_instances('multiplier')} instance(s) "
        f"serving {mult_ops} multiplication operations across 3 processes"
    )

    for seed in range(5):
        stats = SystemSimulator(result, seed=seed, trigger_probability=0.4).run(3000)
        status = "ok" if stats.ok else "VIOLATIONS"
        print(
            f"seed {seed}: {sum(stats.activations.values()):4d} activations, "
            f"multiplier utilization {stats.utilization('multiplier'):.1%}, "
            f"mean grid wait {stats.trace.mean_grid_wait:.1f} cycles -> {status}"
        )


if __name__ == "__main__":
    main()
