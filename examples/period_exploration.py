#!/usr/bin/env python
"""Step S2 exploration: how the period choice trades area for reactivity.

The impact of a global resource period is twofold (§3.2): larger periods
let more processes share an instance, but they coarsen the block start
grid — a spontaneously triggered process must wait up to ``grid - 1``
cycles before its block may start.  This example enumerates the candidate
period assignments for a three-process system (filtered by the eq. 3
rules), schedules each, and prints the area / grid-wait frontier.

Run:  python examples/period_exploration.py
"""

from repro import (
    Block,
    ModuloSystemScheduler,
    Process,
    ResourceAssignment,
    SystemSpec,
    default_library,
    enumerate_period_assignments,
    suggest_periods,
)
from repro.workloads import fir_filter


def main() -> None:
    library = default_library()
    system = SystemSpec(name="sweep")
    for name, taps, deadline in (
        ("alpha", 6, 12),
        ("beta", 6, 12),
        ("gamma", 4, 12),
    ):
        process = Process(name=name)
        process.add_block(
            Block(
                name="main",
                graph=fir_filter(taps, name=f"{name}-fir"),
                deadline=deadline,
            )
        )
        system.add_process(process)

    assignment = ResourceAssignment(library)
    assignment.make_global("multiplier", ["alpha", "beta", "gamma"])
    assignment.make_global("adder", ["alpha", "beta", "gamma"])

    candidates = enumerate_period_assignments(system, assignment)
    print(f"{len(candidates)} period assignments survive the eq. 3 filters\n")
    print(f"{'P(mult)':>8} {'P(add)':>7} {'grid':>5} {'mults':>6} {'adders':>7} {'area':>6}")

    scheduler = ModuloSystemScheduler(library)
    best = None
    for periods in candidates:
        result = scheduler.schedule(system, assignment, periods)
        counts = result.instance_counts()
        grid = result.grid_spacing("alpha")
        area = result.total_area()
        print(
            f"{periods.period('multiplier'):>8} {periods.period('adder'):>7} "
            f"{grid:>5} {counts.get('multiplier', 0):>6} "
            f"{counts.get('adder', 0):>7} {area:>6g}"
        )
        if best is None or area < best[1]:
            best = (periods, area)

    assert best is not None
    print(f"\nbest area {best[1]:g} at periods {best[0].as_dict}")
    suggested = suggest_periods(system, assignment, strategy="min-deadline")
    print(f"heuristic suggestion (min-deadline): {suggested.as_dict}")


if __name__ == "__main__":
    main()
