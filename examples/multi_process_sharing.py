#!/usr/bin/env python
"""The paper's §7 experiment: 3 elliptic wave filters + 2 diffeq solvers.

Schedules the five-process system with the pure global assignment (adder
and multiplier shared by all processes, subtracter by the two equation
solvers, all periods 15) and with the traditional all-local baseline, then
prints the regenerated Table 1 and the area comparison the paper reports
(global ≈ 40 % cheaper, local ≈ 1.65x more expensive).

Run:  python examples/multi_process_sharing.py
"""

from repro import area_weights, bind_instances, verify_system_schedule
from repro.analysis import compare_scopes, table1
from repro.workloads import paper_assignment, paper_periods, paper_system


def main() -> None:
    system, library = paper_system()
    print(
        f"system: {len(system.processes)} processes, "
        f"{system.operation_count} operations"
    )
    for process in system.processes:
        block = process.blocks[0]
        print(
            f"  {process.name}: {block.graph.name}, "
            f"{len(block.graph)} ops, deadline {block.deadline}"
        )
    print()

    comparison = compare_scopes(
        system,
        library,
        paper_assignment(library),
        paper_periods(),
        weights=area_weights(library),
    )

    print(table1(comparison.global_result))
    print()
    print(comparison.render())
    print()

    report = verify_system_schedule(comparison.global_result)
    print(f"static verification: {'ok' if report.ok else 'FAILED'}")
    binding = bind_instances(comparison.global_result)
    print(f"instance binding: {len(binding.binding)} operations bound, conflict-free")


if __name__ == "__main__":
    main()
