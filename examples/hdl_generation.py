#!/usr/bin/env python
"""From behavior to hardware: generate the controllers and datapath.

Schedules a two-process system sharing a multiplier pool, binds every
operation to a concrete functional-unit instance, derives the RTL design
(block FSMs, shared units, authorization ROMs), cross-checks its
consistency, and writes the generated Verilog text next to this script.

Run:  python examples/hdl_generation.py
"""

import pathlib

from repro import (
    Block,
    ExprBuilder,
    ModuloSystemScheduler,
    PeriodAssignment,
    Process,
    ResourceAssignment,
    SystemSpec,
    bind_instances,
    build_rtl,
    default_library,
    emit_verilog,
)
from repro.analysis import system_gantt


def mac_process(name: str, deadline: int) -> Process:
    """acc' = acc + a*b + c*d — a two-tap multiply-accumulate."""
    builder = ExprBuilder(f"{name}-mac")
    acc, a, b, c, d = builder.inputs("acc", "a", "b", "c", "d")
    builder.output("acc'", acc + a * b + c * d)
    process = Process(name=name)
    process.add_block(Block(name="mac", graph=builder.build(), deadline=8))
    return process


def main() -> None:
    library = default_library()
    system = SystemSpec(name="mac-pair")
    system.add_process(mac_process("dsp_a", deadline=8))
    system.add_process(mac_process("dsp_b", deadline=8))

    assignment = ResourceAssignment(library)
    assignment.make_global("multiplier", ["dsp_a", "dsp_b"])
    result = ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"multiplier": 4})
    )
    print(result.summary())
    print()
    print(system_gantt(result))
    print()

    binding = bind_instances(result)
    design = build_rtl(result, binding)
    design.consistency_check()
    stats = design.stats()
    print(
        f"RTL design: {stats['units']} units, {stats['controllers']} "
        f"controllers, {stats['issues']} issues, {stats['rom_bits']} ROM bits"
    )

    text = emit_verilog(design)
    out_path = pathlib.Path(__file__).with_name("mac_pair.v")
    out_path.write_text(text, encoding="utf-8")
    print(f"wrote {out_path} ({len(text.splitlines())} lines)")
    print()
    # Show the shared-pool section of the generated HDL.
    for line in text.splitlines():
        if "AUTH_" in line or "// shared" in line:
            print(line)


if __name__ == "__main__":
    main()
