#!/usr/bin/env python
"""Quickstart: share one multiplier between two independent processes.

Builds two tiny processes with the expression front end, declares the
multiplier globally shared, schedules the system with the modulo method,
and prints the schedule, the access-authorization table, and the area
saved against the traditional per-process scheduling.

Run:  python examples/quickstart.py
"""

from repro import (
    Block,
    ExprBuilder,
    ModuloSystemScheduler,
    PeriodAssignment,
    Process,
    ResourceAssignment,
    SystemSpec,
    default_library,
)
from repro.analysis import compare_scopes
from repro.binding import AccessAuthorizationTable


def build_filter_process(name: str, deadline: int) -> Process:
    """y = (a*x + b) * c — two multiplications, one addition."""
    builder = ExprBuilder(f"{name}-body")
    a, x, b, c = builder.inputs("a", "x", "b", "c")
    y = (a * x + b) * c
    builder.output("y", y)
    process = Process(name=name)
    process.add_block(Block(name="main", graph=builder.build(), deadline=deadline))
    return process


def main() -> None:
    library = default_library()
    system = SystemSpec(name="quickstart")
    system.add_process(build_filter_process("sensor_a", deadline=10))
    system.add_process(build_filter_process("sensor_b", deadline=10))

    # Step S1: the multiplier (area 4) is globally shared; adders stay local.
    assignment = ResourceAssignment(library)
    assignment.make_global("multiplier", ["sensor_a", "sensor_b"])

    # Step S2: the multiplier gets a period of 5 control steps.
    periods = PeriodAssignment({"multiplier": 5})

    # Step S3: coupled modified IFDS over both processes at once.
    scheduler = ModuloSystemScheduler(library)
    result = scheduler.schedule(system, assignment, periods)

    print(result.summary())
    print()
    for process in system.processes:
        print(result.schedule_of(process.name, "main").table())
        print()
    print(AccessAuthorizationTable.from_result(result, "multiplier").render())
    print()

    comparison = compare_scopes(system, library, assignment, periods)
    print(comparison.render())


if __name__ == "__main__":
    main()
