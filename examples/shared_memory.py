#!/usr/bin/env python
"""Sharing a memory port: multicycle resources and the utilization crossover.

The paper's resources "range from simple adders, memories or busses to
more complex (pipelined or multicycle) functions" (§1.1).  This example
shares a 2-cycle, non-pipelined memory port between two DMA movers and a
compute process.  Such multicycle units are the hard case for periodic
sharing — one operation must hold a physical port across two slots — and
are pooled here by a synthesis-time coloring of the periodic conflict
graph.

At low utilization one shared port replaces three private ones; crank up
the traffic and sharing loses to private ports — the crossover that makes
scope selection (step S1) a real decision.

Run:  python examples/shared_memory.py
"""

from repro import (
    ModuloSystemScheduler,
    PeriodAssignment,
    ResourceAssignment,
    SystemSimulator,
    area_weights,
    bind_instances,
)
from repro.core import auto_assignment
from repro.ir.process import SystemSpec
from repro.workloads.memory_system import (
    compute_process,
    dma_process,
    memory_library,
)


def build(words: int, deadline: int):
    library = memory_library()
    system = SystemSpec(name=f"mem-w{words}")
    for index in range(2):
        system.add_process(dma_process(f"dma{index}", words=words, deadline=deadline))
    system.add_process(compute_process("calc", deadline=deadline))
    return system, library


def main() -> None:
    print("utilization sweep: shared vs local memory ports")
    print(f"{'words':>6} {'deadline':>9} {'shared':>7} {'local':>6}")
    for words, deadline, period in ((1, 24, 12), (2, 24, 12), (3, 12, 6)):
        system, library = build(words, deadline)
        assignment = ResourceAssignment(library)
        assignment.make_global("memport", ["dma0", "dma1", "calc"])
        shared = ModuloSystemScheduler(
            library, weights=area_weights(library)
        ).schedule(system, assignment, PeriodAssignment({"memport": period}))
        local = ModuloSystemScheduler(library).schedule(
            system, ResourceAssignment.all_local(library)
        )
        print(
            f"{words:>6} {deadline:>9} "
            f"{shared.instance_counts()['memport']:>7} "
            f"{local.instance_counts()['memport']:>6}"
        )

    # The automatic scope heuristic makes the same call from utilizations.
    system, library = build(1, 24)
    decided = auto_assignment(system, library)
    print(
        "\nauto scope decision at low utilization: memport "
        + ("global" if decided.is_global("memport") else "local")
    )

    # Validate the winning configuration end to end.
    assignment = ResourceAssignment(library)
    assignment.make_global("memport", ["dma0", "dma1", "calc"])
    result = ModuloSystemScheduler(
        library, weights=area_weights(library)
    ).schedule(system, assignment, PeriodAssignment({"memport": 12}))
    bind_instances(result).validate()
    stats = SystemSimulator(result, seed=9, trigger_probability=0.4).run(4000)
    print(
        f"simulated 4000 cycles: {sum(stats.activations.values())} activations, "
        f"port utilization {stats.utilization('memport'):.1%}, "
        f"violations: {'none' if stats.ok else len(stats.trace.violations)}"
    )


if __name__ == "__main__":
    main()
