"""Tests for operation-to-instance binding."""

import pytest

from repro.binding.instances import bind_instances
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import paper_assignment, paper_periods, paper_system


def build_result(global_adder=True, n1=3, n2=2, deadline=6, period=3):
    library = default_library()
    system = SystemSpec(name="s")
    for name, n_ops in (("p1", n1), ("p2", n2)):
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_ops):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    if global_adder:
        assignment.make_global("adder", ["p1", "p2"])
        periods = PeriodAssignment({"adder": period})
    else:
        periods = None
    return ModuloSystemScheduler(library).schedule(system, assignment, periods)


class TestBindInstances:
    def test_every_operation_bound(self):
        result = build_result()
        binding = bind_instances(result)
        total_ops = sum(len(s.graph) for s in result.block_schedules.values())
        assert len(binding.binding) == total_ops

    def test_validation_passes(self):
        binding = bind_instances(build_result())
        binding.validate()  # no exception

    def test_global_ids_inside_pool(self):
        result = build_result()
        binding = bind_instances(result)
        pool = result.global_instances("adder")
        for key, instance in binding.binding.items():
            assert 0 <= instance < pool

    def test_global_ids_within_process_slot_range(self):
        result = build_result()
        binding = bind_instances(result)
        table = binding.tables["adder"]
        for (process, block, op_id), instance in binding.binding.items():
            sched = result.block_schedules[(process, block)]
            start = sched.start(op_id)
            assert instance in table.instance_ids(process, start)

    def test_local_binding_within_peak(self):
        result = build_result(global_adder=False)
        binding = bind_instances(result)
        for (process, block, op_id), instance in binding.binding.items():
            limit = result.local_instances(process, "adder")
            assert 0 <= instance < limit

    def test_concurrent_ops_get_distinct_instances(self):
        # 4 adds, deadline 2 -> two ops per step, two instances.
        result = build_result(global_adder=False, n1=4, n2=1, deadline=2)
        binding = bind_instances(result)
        sched = result.block_schedules[("p1", "main")]
        by_step = {}
        for op in sched.graph:
            key = (sched.start(op.op_id),)
            by_step.setdefault(key, []).append(
                binding.instance_of("p1", "main", op.op_id)
            )
        for instances in by_step.values():
            assert len(set(instances)) == len(instances)

    def test_paper_system_binds_cleanly(self):
        system, library = paper_system()
        result = ModuloSystemScheduler(library).schedule(
            system, paper_assignment(library), paper_periods()
        )
        binding = bind_instances(result)
        binding.validate()
        assert len(binding.tables) == 3
