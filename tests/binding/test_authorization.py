"""Tests for access-authorization tables."""

import pytest

from repro.errors import BindingError
from repro.binding.authorization import AccessAuthorizationTable
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


@pytest.fixture
def shared_result():
    library = default_library()
    system = SystemSpec(name="s")
    for name, n_ops in (("p1", 2), ("p2", 1)):
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_ops):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=4))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": 2})
    )


class TestFromResult:
    def test_table_matches_result_authorizations(self, shared_result):
        table = AccessAuthorizationTable.from_result(shared_result, "adder")
        assert table.period == 2
        assert table.process_order == ("p1", "p2")
        for process in ("p1", "p2"):
            assert (
                table.grants[process]
                == shared_result.authorization(process, "adder")
            ).all()

    def test_non_global_type_rejected(self, shared_result):
        with pytest.raises(BindingError, match="not globally"):
            AccessAuthorizationTable.from_result(shared_result, "multiplier")


class TestTableQueries:
    def test_grant_wraps_modulo(self, shared_result):
        table = AccessAuthorizationTable.from_result(shared_result, "adder")
        for slot in range(2):
            assert table.grant("p1", slot) == table.grant("p1", slot + 2)

    def test_offsets_partition_the_pool(self, shared_result):
        table = AccessAuthorizationTable.from_result(shared_result, "adder")
        for slot in range(table.period):
            ids_p1 = set(table.instance_ids("p1", slot))
            ids_p2 = set(table.instance_ids("p2", slot))
            assert ids_p1.isdisjoint(ids_p2)
            assert len(ids_p1) == table.grant("p1", slot)
            assert len(ids_p2) == table.grant("p2", slot)
            combined = ids_p1 | ids_p2
            assert all(0 <= i < table.pool_size for i in combined)

    def test_pool_size_is_max_demand(self, shared_result):
        table = AccessAuthorizationTable.from_result(shared_result, "adder")
        assert table.pool_size == int(table.demand().max())
        assert table.pool_size == shared_result.global_instances("adder")

    def test_unknown_process_rejected(self, shared_result):
        table = AccessAuthorizationTable.from_result(shared_result, "adder")
        with pytest.raises(BindingError, match="does not share"):
            table.grant("zz", 0)
        with pytest.raises(BindingError, match="does not share"):
            table.offset("zz", 0)

    def test_render_contains_rows(self, shared_result):
        text = AccessAuthorizationTable.from_result(shared_result, "adder").render()
        assert "p1" in text
        assert "pool size" in text
