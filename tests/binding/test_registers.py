"""Tests for register/lifetime estimation."""

import pytest

from repro.binding.registers import Lifetime, register_requirement, value_lifetimes
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.resources.library import default_library
from repro.scheduling.schedule import BlockSchedule


def chain_schedule():
    library = default_library()
    graph = DataFlowGraph(name="c")
    graph.add("a", OpKind.ADD)
    graph.add("b", OpKind.ADD)
    graph.add("c", OpKind.ADD)
    graph.add_edges([("a", "b"), ("b", "c")])
    return BlockSchedule(
        graph=graph, library=library, starts={"a": 0, "b": 1, "c": 2}, deadline=4
    )


class TestLifetimes:
    def test_value_lives_from_finish_to_last_consumer(self):
        lifetimes = {lt.op_id: lt for lt in value_lifetimes(chain_schedule())}
        assert lifetimes["a"].birth == 1
        assert lifetimes["a"].death == 2  # consumer b starts at 1

    def test_output_value_lives_to_deadline(self):
        lifetimes = {lt.op_id: lt for lt in value_lifetimes(chain_schedule())}
        assert lifetimes["c"].death == 4

    def test_lifetime_length(self):
        assert Lifetime("x", 2, 5).length == 3
        assert Lifetime("x", 5, 2).length == 0


class TestRegisterRequirement:
    def test_chain_needs_one_register_at_a_time(self):
        # a's value dies as b is consumed; c's output value persists.
        assert register_requirement(chain_schedule()) >= 1

    def test_parallel_producers_need_parallel_registers(self):
        library = default_library()
        graph = DataFlowGraph(name="p")
        for i in range(3):
            graph.add(f"s{i}", OpKind.ADD)
        graph.add("sink", OpKind.ADD)
        for i in range(3):
            graph.add_edge(f"s{i}", "sink")
        sched = BlockSchedule(
            graph=graph,
            library=library,
            starts={"s0": 0, "s1": 0, "s2": 0, "sink": 1},
            deadline=3,
        )
        # Three values live simultaneously between step 1 and the sink.
        assert register_requirement(sched) >= 3

    def test_staggered_producers_reuse_registers(self):
        library = default_library()
        graph = DataFlowGraph(name="q")
        graph.add("s0", OpKind.ADD)
        graph.add("t0", OpKind.ADD)
        graph.add("s1", OpKind.ADD)
        graph.add("t1", OpKind.ADD)
        graph.add_edges([("s0", "t0"), ("s1", "t1")])
        sched = BlockSchedule(
            graph=graph,
            library=library,
            starts={"s0": 0, "t0": 1, "s1": 2, "t1": 3},
            deadline=4,
        )
        lifetimes = {lt.op_id: lt for lt in value_lifetimes(sched)}
        assert lifetimes["s0"].death <= lifetimes["s1"].birth


class TestAllocateRegisters:
    def test_register_count_matches_requirement(self):
        from repro.binding.registers import allocate_registers

        sched = chain_schedule()
        allocation = allocate_registers(sched)
        used = len(set(allocation.values())) if allocation else 0
        assert used == register_requirement(sched)

    def test_no_overlapping_values_share_a_register(self):
        from repro.binding.registers import allocate_registers

        sched = chain_schedule()
        allocation = allocate_registers(sched)
        lifetimes = {lt.op_id: lt for lt in value_lifetimes(sched)}
        items = list(allocation.items())
        for i, (op_a, reg_a) in enumerate(items):
            for op_b, reg_b in items[i + 1 :]:
                if reg_a != reg_b:
                    continue
                a, b = lifetimes[op_a], lifetimes[op_b]
                assert a.death <= b.birth or b.death <= a.birth

    def test_allocation_on_random_schedules(self):
        from repro.binding.registers import allocate_registers
        from repro.ir.process import Block
        from repro.scheduling.ifds import ImprovedForceDirectedScheduler
        from repro.workloads import random_dfg

        library = default_library()
        for seed in range(5):
            graph = random_dfg(12, seed=seed)
            deadline = graph.critical_path_length(library.latency_of) + 3
            sched = ImprovedForceDirectedScheduler(library).schedule(
                Block(name="b", graph=graph, deadline=deadline)
            )
            allocation = allocate_registers(sched)
            used = len(set(allocation.values())) if allocation else 0
            assert used == register_requirement(sched)
