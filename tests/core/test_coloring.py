"""Tests for periodic conflict-graph coloring of multicycle global types."""

import pytest

from repro.core import ModuloSystemScheduler, PeriodAssignment
from repro.core.coloring import multicycle_coloring, multicycle_pool
from repro.core.verify import verify_system_schedule
from repro.binding import bind_instances
from repro.resources import ResourceAssignment
from repro.rtl import build_rtl
from repro.scheduling import area_weights
from repro.sim import SystemSimulator
from repro.ir.process import SystemSpec
from repro.workloads.memory_system import (
    compute_process,
    dma_process,
    memory_library,
)


def memory_result(words=2, deadline=12, period=6, movers=2):
    library = memory_library()
    system = SystemSpec(name="mem")
    names = []
    for index in range(movers):
        system.add_process(dma_process(f"dma{index}", words=words, deadline=deadline))
        names.append(f"dma{index}")
    system.add_process(compute_process("calc", deadline=deadline))
    names.append("calc")
    assignment = ResourceAssignment(library)
    assignment.make_global("memport", names)
    scheduler = ModuloSystemScheduler(library, weights=area_weights(library))
    return scheduler.schedule(system, assignment, PeriodAssignment({"memport": period}))


class TestColoring:
    def test_colors_cover_all_memport_ops(self):
        result = memory_result()
        colors = multicycle_coloring(result, "memport")
        expected = 2 * 4 + 3  # two movers x (2 loads + 2 stores) + calc's 3
        assert len(colors) == expected

    def test_conflicting_ops_differ(self):
        """Any two ops of different processes sharing an absolute slot
        must have different colors."""
        result = memory_result()
        period = result.periods.period("memport")
        occupancy = result.library.type("memport").occupancy
        colors = multicycle_coloring(result, "memport")
        slots = {}
        for (process, block, op_id), color in colors.items():
            sched = result.block_schedules[(process, block)]
            start = sched.start(op_id)
            op_slots = {(s + result.offset_of(process)) % period
                        for s in range(start, start + occupancy)}
            slots[(process, block, op_id)] = op_slots
        keys = list(colors)
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                if a[0] != b[0] and slots[a] & slots[b]:
                    assert colors[a] != colors[b], (a, b)

    def test_pool_bounded_by_demand_and_peak_sum(self):
        result = memory_result()
        pool = multicycle_pool(result, "memport")
        demand_max = int(result.global_demand("memport").max())
        peak_sum = sum(
            int(result.authorization(p, "memport").max())
            for p in result.assignment.group("memport")
        )
        assert demand_max <= pool <= peak_sum
        assert result.global_instances("memport") == pool

    def test_low_utilization_sharing_beats_local(self):
        """A lightly used multicycle memory port collapses to one shared
        instance, versus one per process locally."""
        result = memory_result(words=1, deadline=24, period=12)
        assert result.global_instances("memport") == 1
        library = result.library
        local = ModuloSystemScheduler(library).schedule(
            result.system, ResourceAssignment.all_local(library)
        )
        assert local.instance_counts()["memport"] == 3

    def test_full_stack_with_multicycle_sharing(self):
        result = memory_result()
        assert verify_system_schedule(result).ok
        binding = bind_instances(result)
        binding.validate()
        pool = result.global_instances("memport")
        for (process, block, op_id), instance in binding.binding.items():
            op = result.block_schedules[(process, block)].graph.operation(op_id)
            if result.library.type_of(op).name == "memport":
                assert 0 <= instance < pool
        build_rtl(result, binding).consistency_check()
        for seed in range(3):
            stats = SystemSimulator(result, seed=seed, trigger_probability=0.5)
            run = stats.run(1200)
            assert run.ok, run.trace.render()

    def test_deterministic(self):
        c1 = multicycle_coloring(memory_result(), "memport")
        c2 = multicycle_coloring(memory_result(), "memport")
        assert c1 == c2

    def test_non_global_type_rejected(self):
        result = memory_result()
        with pytest.raises(Exception, match="not globally"):
            multicycle_coloring(result, "adder")
