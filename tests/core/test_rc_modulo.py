"""Tests for resource-constrained modulo scheduling (reference [8])."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.core.periods import PeriodAssignment
from repro.core.rc_modulo import RCModuloScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import paper_assignment, paper_periods, paper_system


def adds_system(spec):
    """spec: {process: (n_adds, deadline)}."""
    system = SystemSpec(name="s")
    for name, (n_adds, deadline) in spec.items():
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_adds):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    return system


@pytest.fixture
def library():
    return default_library()


class TestRCModulo:
    def test_shared_pool_splits_slots(self, library):
        """One shared adder, period 2: the first process claims some slots,
        the second gets the rest; both finish."""
        system = adds_system({"p1": (1, 4), "p2": (1, 4)})
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = RCModuloScheduler(library, {"adder": 1}).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        a1 = result.authorization("p1", "adder")
        a2 = result.authorization("p2", "adder")
        # Slot-wise demand never exceeds the single instance.
        assert np.all(a1 + a2 <= 1)
        assert result.meets_deadlines()

    def test_exhausted_pool_starves_later_process(self, library):
        """With period 1 and a single instance, p1's claim covers every
        absolute step — p2 can never be granted anything."""
        system = adds_system({"p1": (2, 2), "p2": (1, 1)})
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        with pytest.raises(SchedulingError, match="horizon"):
            RCModuloScheduler(library, {"adder": 1}).schedule(
                system, assignment, PeriodAssignment({"adder": 1})
            )

    def test_bigger_pool_restores_deadlines(self, library):
        system = adds_system({"p1": (2, 2), "p2": (1, 1)})
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = RCModuloScheduler(library, {"adder": 2}).schedule(
            system, assignment, PeriodAssignment({"adder": 1})
        )
        assert result.meets_deadlines()

    def test_fair_share_prevents_first_process_greed(self, library):
        """Pool 2, period 2: without fair share, p1 packs both adds into
        one step and claims both instances at one slot; with fair share it
        spreads, leaving that slot usable for p2."""
        def run(fair):
            system = adds_system({"p1": (2, 4), "p2": (2, 4)})
            assignment = ResourceAssignment(library)
            assignment.make_global("adder", ["p1", "p2"])
            return RCModuloScheduler(
                library, {"adder": 2}, fair_share=fair
            ).schedule(system, assignment, PeriodAssignment({"adder": 2}))

        fair = run(True)
        claims = fair.authorization("p1", "adder")
        assert claims.max() <= 1
        assert fair.meets_deadlines()

    def test_missing_capacity_rejected(self, library):
        system = adds_system({"p1": (1, 4), "p2": (1, 4)})
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        with pytest.raises(SchedulingError, match="capacity"):
            RCModuloScheduler(library, {}).schedule(
                system, assignment, PeriodAssignment({"adder": 2})
            )

    def test_block_schedules_are_valid(self, library):
        system = adds_system({"p1": (3, 6), "p2": (2, 6)})
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = RCModuloScheduler(library, {"adder": 2}).schedule(
            system, assignment, PeriodAssignment({"adder": 3})
        )
        for sched in result.block_schedules.values():
            sched.validate()

    def test_paper_system_with_tcms_pool_sizes(self, library):
        """The pool sizes found by the time-constrained run must allow a
        resource-constrained schedule that meets the paper deadlines."""
        system, library = paper_system()
        capacity = {"adder": 4, "subtracter": 1, "multiplier": 3}
        result = RCModuloScheduler(library, capacity).schedule(
            system, paper_assignment(library), paper_periods()
        )
        for (pname, bname), sched in result.block_schedules.items():
            sched.validate()
        assert result.meets_deadlines()
