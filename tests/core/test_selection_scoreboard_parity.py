"""Decision parity of the selection scoreboard (docs/performance.md).

The dirty-cone scoreboard must change *how much work* a selection scan
does, never *which* reduction wins: a ``use_scoreboard=True`` run of
the coupled scheduler must make the identical sequence of reduction
decisions — same (process, block, op, side) at every iteration — and
land on the same schedules, area, and telemetry counters as the full
per-iteration candidate rescan.  Pinned over the paper workload, a
guarded/conditional workload, 20 seeded random systems, and 3 scenario
corpus instances (the ISSUE 8 acceptance oracle), on both the kernel
and the scalar force paths.

Counter equality is deliberately strict: a skipped entry still charges
its candidate count and its cache-hit probes exactly as the full scan
would have, so any drift in the dirty-cone or subscription bookkeeping
shows up here before it can perturb a decision.  Only the scoreboard's
own work split (``selection_rescored`` / ``selection_skipped``) is
excluded — it measures the optimization itself and is zero when the
scoreboard is off.
"""

import pytest

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import Block, Process, SystemSpec
from repro.obs import Tracer
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.forces import area_weights
from repro.workloads import (
    corpus_system,
    mode_switching_filter,
    paper_assignment,
    paper_periods,
    paper_system,
    random_dfg,
)

#: The scoreboard's own counters: legitimately differ between the arms.
SCOREBOARD_COUNTERS = ("selection_rescored", "selection_skipped")


def comparable(counters):
    """Counters minus the scoreboard-owned work split."""
    return {
        name: value
        for name, value in counters.items()
        if name not in SCOREBOARD_COUNTERS
    }


def run_scheduler(
    system, library, assignment, periods, *,
    use_scoreboard, use_kernels=True, weights=None,
):
    """One traced run; returns (decisions, starts, area, counters)."""
    tracer = Tracer()
    scheduler = ModuloSystemScheduler(
        library,
        weights=weights,
        use_kernels=use_kernels,
        use_scoreboard=use_scoreboard,
        tracer=tracer,
    )
    result = scheduler.schedule(system, assignment, periods)
    decisions = [
        (e.attrs["process"], e.attrs["block"], e.attrs["op"], e.attrs["side"])
        for e in tracer.events_named("reduction")
    ]
    starts = {key: sched.starts for key, sched in result.block_schedules.items()}
    return decisions, starts, result.total_area(), tracer.counters.as_dict()


def assert_parity(
    system_factory, library, assignment_factory, periods, *,
    use_kernels=True, weights=None,
):
    """Scoreboard and full-rescan runs must agree decision for decision."""
    board = run_scheduler(
        system_factory(),
        library,
        assignment_factory(),
        periods,
        use_scoreboard=True,
        use_kernels=use_kernels,
        weights=weights,
    )
    rescan = run_scheduler(
        system_factory(),
        library,
        assignment_factory(),
        periods,
        use_scoreboard=False,
        use_kernels=use_kernels,
        weights=weights,
    )
    assert board[0] == rescan[0], "reduction sequences diverged"
    assert board[1] == rescan[1], "final schedules diverged"
    assert board[2] == rescan[2], "total area diverged"
    assert comparable(board[3]) == comparable(rescan[3]), (
        "telemetry counters diverged"
    )
    return board[3]


class TestPaperSystemParity:
    @pytest.mark.parametrize("use_kernels", [True, False])
    def test_paper_system_identical_decisions_and_schedule(self, use_kernels):
        _system, library = paper_system()

        counters = assert_parity(
            lambda: paper_system()[0],
            library,
            lambda: paper_assignment(library),
            paper_periods(),
            use_kernels=use_kernels,
            weights=area_weights(library),
        )
        # The scoreboard must actually skip entries, not just agree.
        assert counters.get("selection_skipped", 0) > 0


class TestGuardedWorkloadParity:
    @pytest.mark.parametrize("use_kernels", [True, False])
    def test_mode_switching_system(self, use_kernels):
        """Guarded footprints rescore through the scalar probe path;
        decisions and counters still match the full rescan."""
        library = default_library()

        def build_system():
            system = SystemSpec(name="modal")
            for index, taps in enumerate((3, 4)):
                graph = mode_switching_filter(taps, name=f"g{index}")
                deadline = graph.critical_path_length(library.latency_of) + 4
                process = Process(name=f"p{index}")
                process.add_block(
                    Block(name="main", graph=graph, deadline=deadline)
                )
                system.add_process(process)
            return system

        def build_assignment():
            return ResourceAssignment.all_global(library, build_system())

        periods = PeriodAssignment(
            {name: 3 for name in build_assignment().global_types}
        )
        assert_parity(
            build_system, library, build_assignment, periods,
            use_kernels=use_kernels,
        )


class TestRandomPopulationParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_system(self, seed):
        library = default_library()

        def build_system():
            system = SystemSpec(name=f"rand{seed}")
            for index in range(3):
                graph = random_dfg(8, seed=100 * seed + index)
                deadline = graph.critical_path_length(library.latency_of) + 4
                process = Process(name=f"p{index}")
                process.add_block(
                    Block(name="main", graph=graph, deadline=deadline)
                )
                system.add_process(process)
            return system

        def build_assignment():
            return ResourceAssignment.all_global(library, build_system())

        periods = PeriodAssignment(
            {name: 4 for name in build_assignment().global_types}
        )
        assert_parity(build_system, library, build_assignment, periods)


class TestCorpusParity:
    """The scenario corpus is the scoreboard's target workload: many
    heterogeneous processes coupled through eleven shared clusters."""

    @pytest.mark.parametrize("processes,seed", [(6, 0), (10, 1), (14, 2)])
    def test_corpus_instance(self, processes, seed):
        instance = corpus_system(processes, seed=seed)
        counters = assert_parity(
            lambda: instance.system,
            instance.library,
            lambda: instance.assignment,
            instance.periods,
        )
        # Corpus commits touch a small dirty cone: most entry visits
        # must be skips for the optimization to be doing its job.
        rescored = counters["selection_rescored"]
        skipped = counters["selection_skipped"]
        assert skipped > rescored
