"""Tests for SystemSchedule (counting, authorizations, area)."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.core.periods import PeriodAssignment
from repro.core.result import SystemSchedule
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.schedule import BlockSchedule


def hand_built_result():
    """Two processes, one add-block each, schedules written by hand.

    p1 schedules its two adds at steps 0 and 2 (slot 0 of period 2);
    p2 schedules its single add at step 1 (slot 1).
    """
    library = default_library()
    system = SystemSpec(name="s")

    g1 = DataFlowGraph(name="g1")
    g1.add("x0", OpKind.ADD)
    g1.add("x1", OpKind.ADD)
    p1 = Process(name="p1")
    p1.add_block(Block(name="main", graph=g1, deadline=4))
    system.add_process(p1)

    g2 = DataFlowGraph(name="g2")
    g2.add("y0", OpKind.ADD)
    p2 = Process(name="p2")
    p2.add_block(Block(name="main", graph=g2, deadline=2))
    system.add_process(p2)

    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    periods = PeriodAssignment({"adder": 2})
    schedules = {
        ("p1", "main"): BlockSchedule(
            graph=g1, library=library, starts={"x0": 0, "x1": 2}, deadline=4
        ),
        ("p2", "main"): BlockSchedule(
            graph=g2, library=library, starts={"y0": 1}, deadline=2
        ),
    }
    return SystemSchedule(
        system=system,
        library=library,
        assignment=assignment,
        periods=periods,
        block_schedules=schedules,
    )


class TestAuthorization:
    def test_folded_authorizations(self):
        result = hand_built_result()
        assert result.authorization("p1", "adder").tolist() == [1, 0]
        assert result.authorization("p2", "adder").tolist() == [0, 1]

    def test_authorization_requires_shared_type(self):
        result = hand_built_result()
        with pytest.raises(SchedulingError, match="not globally shared"):
            result.authorization("p1", "multiplier")

    def test_global_demand_and_instances(self):
        result = hand_built_result()
        assert result.global_demand("adder").tolist() == [1, 1]
        assert result.global_instances("adder") == 1

    def test_global_demand_requires_global_type(self):
        result = hand_built_result()
        with pytest.raises(SchedulingError, match="not global"):
            result.global_demand("multiplier")


class TestCounts:
    def test_local_instances_zero_for_shared_process(self):
        result = hand_built_result()
        assert result.local_instances("p1", "adder") == 0

    def test_local_instances_zero_for_unused_type(self):
        result = hand_built_result()
        assert result.local_instances("p1", "multiplier") == 0

    def test_instance_counts_only_lists_used_types(self):
        result = hand_built_result()
        assert result.instance_counts() == {"adder": 1}

    def test_total_area(self):
        result = hand_built_result()
        assert result.total_area() == 1.0

    def test_grid_spacing(self):
        result = hand_built_result()
        assert result.grid_spacing("p1") == 2
        assert result.grid_spacing("p2") == 2


class TestValidation:
    def test_validate_passes(self):
        hand_built_result().validate()

    def test_missing_block_schedule_detected(self):
        result = hand_built_result()
        del result.block_schedules[("p2", "main")]
        with pytest.raises(SchedulingError, match="no schedule"):
            result.validate()

    def test_summary_mentions_counts(self):
        assert "1x adder" in hand_built_result().summary()
