"""Deeper system-scheduler tests: multi-block processes, mixed periods,
guard/global interplay, and partial group membership."""

import numpy as np
import pytest

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.core.verify import verify_system_schedule
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.sim.simulator import SystemSimulator


@pytest.fixture
def library():
    return default_library()


def block_of(name, ops, deadline, edges=(), guards=None):
    graph = DataFlowGraph(name=f"{name}-g")
    for op_id, kind in ops:
        guard = (guards or {}).get(op_id)
        graph.add(op_id, kind, guard=guard)
    graph.add_edges(edges)
    return Block(name=name, graph=graph, deadline=deadline)


class TestMultiBlockProcesses:
    def test_loop_body_plus_prologue(self, library):
        """The paper's block composition: a prologue block and a repeating
        loop body, both drawing from the same global pool."""
        process = Process(name="p1")
        process.add_block(block_of("prologue", [("a0", OpKind.ADD)], 4))
        body = block_of("body", [("a1", OpKind.ADD), ("a2", OpKind.ADD)], 4)
        body.repeats = True
        process.add_block(body)
        other = Process(name="p2")
        other.add_block(block_of("main", [("x", OpKind.ADD)], 4))
        system = SystemSpec(name="s")
        system.add_process(process)
        system.add_process(other)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        assert verify_system_schedule(result).ok
        # p1's authorization is the max over prologue and body (eq. 9).
        auth = result.authorization("p1", "adder")
        for __, sched in result.blocks_of("p1"):
            folded = np.zeros(2, dtype=int)
            profile = sched.usage_profile("adder")
            for t, used in enumerate(profile):
                folded[t % 2] = max(folded[t % 2], used)
            assert (folded <= auth).all()
        for seed in range(3):
            stats = SystemSimulator(result, seed=seed, trigger_probability=0.6)
            assert stats.run(500).ok

    def test_harmonic_mixed_periods(self, library):
        """Adder period 2 and multiplier period 4 (harmonic) in one process:
        grid = 4, both couplings hold."""
        system = SystemSpec(name="s")
        for name in ("p1", "p2"):
            graph = DataFlowGraph(name=f"{name}-g")
            graph.add("a", OpKind.ADD)
            graph.add("m", OpKind.MUL)
            process = Process(name=name)
            process.add_block(Block(name="main", graph=graph, deadline=8))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        assignment.make_global("multiplier", ["p1", "p2"])
        periods = PeriodAssignment({"adder": 2, "multiplier": 4})
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, periods
        )
        assert result.grid_spacing("p1") == 4
        assert verify_system_schedule(result).ok
        assert result.global_instances("adder") == 1
        assert result.global_instances("multiplier") == 1

    def test_partial_group_membership(self, library):
        """p3 uses adders but stays outside the sharing group: it keeps a
        local instance while p1/p2 share a pool."""
        system = SystemSpec(name="s")
        for name in ("p1", "p2", "p3"):
            graph = DataFlowGraph(name=f"{name}-g")
            graph.add("a", OpKind.ADD)
            process = Process(name=name)
            process.add_block(Block(name="main", graph=graph, deadline=2))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        assert result.global_instances("adder") == 1
        assert result.local_instances("p3", "adder") == 1
        assert result.instance_counts()["adder"] == 2

    def test_guarded_global_sharing(self, library):
        """Exclusive branches fold into the authorization at branch-max,
        so a guarded pair costs one slot grant, not two."""
        system = SystemSpec(name="s")
        p1 = Process(name="p1")
        p1.add_block(
            block_of(
                "main",
                [("t", OpKind.ADD), ("e", OpKind.ADD)],
                2,
                guards={"t": ("c", "then"), "e": ("c", "else")},
            )
        )
        system.add_process(p1)
        p2 = Process(name="p2")
        p2.add_block(block_of("main", [("x", OpKind.ADD)], 2))
        system.add_process(p2)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        assert int(result.authorization("p1", "adder").sum()) <= 2
        assert result.global_instances("adder") == 1
