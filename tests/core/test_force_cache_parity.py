"""Decision parity of the incremental force cache (docs/performance.md).

The force cache must change *when* forces are computed, never *what*
they evaluate to: a cached :class:`ModuloSystemScheduler` run must make
the byte-identical sequence of reduction decisions — same (process,
block, op, side) at every iteration — and land on the same final
schedule and area as the brute-force scan.  These tests pin that over
the paper workload, a guarded/conditional workload, and a population of
seeded random systems.
"""

import pytest

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import Block, Process, SystemSpec
from repro.obs import Tracer
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.forces import area_weights
from repro.workloads import (
    mode_switching_filter,
    paper_assignment,
    paper_periods,
    paper_system,
    random_dfg,
)


def run_scheduler(system, library, assignment, periods, *, force_cache, weights=None):
    """One traced run; returns (decisions, starts, area, counters)."""
    tracer = Tracer()
    scheduler = ModuloSystemScheduler(
        library, weights=weights, force_cache=force_cache, tracer=tracer
    )
    result = scheduler.schedule(system, assignment, periods)
    decisions = [
        (e.attrs["process"], e.attrs["block"], e.attrs["op"], e.attrs["side"])
        for e in tracer.events_named("reduction")
    ]
    starts = {key: sched.starts for key, sched in result.block_schedules.items()}
    return decisions, starts, result.total_area(), tracer.counters.as_dict()


def assert_parity(system_factory, library, assignment_factory, periods, weights=None):
    """Cached and uncached runs must agree on every decision and result.

    Factories rebuild the system/assignment per run so no state leaks
    between the two arms.
    """
    cached = run_scheduler(
        system_factory(),
        library,
        assignment_factory(),
        periods,
        force_cache=True,
        weights=weights,
    )
    brute = run_scheduler(
        system_factory(),
        library,
        assignment_factory(),
        periods,
        force_cache=False,
        weights=weights,
    )
    assert cached[0] == brute[0], "reduction sequences diverged"
    assert cached[1] == brute[1], "final schedules diverged"
    assert cached[2] == brute[2], "total area diverged"
    return cached[3], brute[3]


class TestPaperSystemParity:
    def test_paper_system_identical_decisions_and_schedule(self):
        system, library = paper_system()

        def build_system():
            return paper_system()[0]

        cached_counters, brute_counters = assert_parity(
            build_system,
            library,
            lambda: paper_assignment(library),
            paper_periods(),
            weights=area_weights(library),
        )
        assert (
            cached_counters["force_evaluations"]
            < brute_counters["force_evaluations"]
        )
        assert cached_counters.get("force_cache_hits", 0) > 0


class TestGuardedWorkloadParity:
    def test_mode_switching_system(self):
        """Guarded ops (mutually exclusive paths) go through the same
        dirty-set rules as unconditional ones."""
        library = default_library()

        def build_system():
            system = SystemSpec(name="modal")
            for index, taps in enumerate((3, 4)):
                graph = mode_switching_filter(taps, name=f"g{index}")
                deadline = graph.critical_path_length(library.latency_of) + 4
                process = Process(name=f"p{index}")
                process.add_block(
                    Block(name="main", graph=graph, deadline=deadline)
                )
                system.add_process(process)
            return system

        def build_assignment():
            return ResourceAssignment.all_global(library, build_system())

        periods = PeriodAssignment(
            {
                name: 3
                for name in build_assignment().global_types
            }
        )
        assert_parity(build_system, library, build_assignment, periods)


class TestRandomPopulationParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_system(self, seed):
        library = default_library()

        def build_system():
            system = SystemSpec(name=f"rand{seed}")
            for index in range(3):
                graph = random_dfg(8, seed=100 * seed + index)
                deadline = graph.critical_path_length(library.latency_of) + 4
                process = Process(name=f"p{index}")
                process.add_block(
                    Block(name="main", graph=graph, deadline=deadline)
                )
                system.add_process(process)
            return system

        def build_assignment():
            return ResourceAssignment.all_global(library, build_system())

        periods = PeriodAssignment(
            {name: 4 for name in build_assignment().global_types}
        )
        assert_parity(build_system, library, build_assignment, periods)


class TestLocalForceDelegation:
    def test_scheduler_force_matches_shared_kernel_without_globals(self):
        """With no global types the coupled scheduler's placement force
        must equal :func:`repro.scheduling.forces.placement_force` — the
        scheduler delegates purely-local evaluation to the shared kernel
        rather than duplicating it."""
        from repro.core.scheduler import _Entry, _GlobalCoupling
        from repro.scheduling.forces import placement_force
        from repro.scheduling.state import BlockState

        library = default_library()
        graph = random_dfg(10, seed=7)
        deadline = graph.critical_path_length(library.latency_of) + 5
        block = Block(name="main", graph=graph, deadline=deadline)

        scheduler = ModuloSystemScheduler(library)
        assignment = ResourceAssignment.all_local(library)
        entries = [_Entry("p0", block, BlockState(block, library))]
        coupling = _GlobalCoupling(entries, assignment, PeriodAssignment({}))
        entry = entries[0]
        for op_id in entry.state.frames.unfixed():
            lo, hi = entry.state.frames.frame(op_id)
            for step in (lo, hi):
                via_scheduler = scheduler._placement_force(
                    0, entry, coupling, op_id, step
                )
                via_kernel = placement_force(
                    entry.state, op_id, step, lookahead=scheduler.lookahead
                )
                assert via_scheduler == via_kernel
