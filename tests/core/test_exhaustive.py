"""Tests for the exhaustive interleaving checker."""

import pytest

from repro.errors import VerificationError
from repro.core.exhaustive import exhaustive_interleaving_check
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def small_shared_result(n_procs=2, n_adds=2, deadline=4, period=2):
    library = default_library()
    system = SystemSpec(name="s")
    names = []
    for index in range(n_procs):
        name = f"p{index}"
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_adds):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
        names.append(name)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", names)
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": period})
    )


class TestExhaustiveCheck:
    def test_valid_schedule_passes_all_interleavings(self):
        result = small_shared_result()
        report = exhaustive_interleaving_check(result)
        assert report.ok, report.violation
        assert report.combinations > 1
        report.raise_on_failure()  # no exception

    def test_worst_usage_reaches_the_pool(self):
        """The pool is tight: some interleaving attains it exactly."""
        result = small_shared_result()
        report = exhaustive_interleaving_check(result)
        assert report.worst_usage["adder"] == report.pools["adder"]

    def test_three_processes(self):
        result = small_shared_result(n_procs=3, n_adds=1, deadline=3, period=3)
        report = exhaustive_interleaving_check(result)
        assert report.ok, report.violation

    def test_corrupted_schedule_detected(self):
        """Moving an op off its authorized slot must surface in some
        enumerated interleaving."""
        result = small_shared_result()
        sched = result.block_schedules[("p0", "main")]
        # Pack every op of p0 onto step 0 (overloading one slot).
        for op_id in sched.starts:
            sched.starts[op_id] = 0
        report = exhaustive_interleaving_check(result)
        # Either the pool is exceeded in some interleaving, or the pool
        # grew because authorizations are derived from the same starts —
        # so recompute against the original pools instead:
        assert report.worst_usage["adder"] >= 2

    def test_combination_guard(self):
        result = small_shared_result(n_procs=3, deadline=8, period=8)
        with pytest.raises(VerificationError, match="combinations"):
            exhaustive_interleaving_check(result, max_combinations=5)

    def test_multicycle_pool_covered(self):
        from repro.ir.process import SystemSpec as SS
        from repro.workloads.memory_system import (
            compute_process,
            dma_process,
            memory_library,
        )

        library = memory_library()
        system = SS(name="mem")
        system.add_process(dma_process("dma0", words=1, deadline=8))
        system.add_process(compute_process("calc", deadline=8))
        assignment = ResourceAssignment(library)
        assignment.make_global("memport", ["dma0", "calc"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"memport": 4})
        )
        report = exhaustive_interleaving_check(result)
        assert report.ok, report.violation
