"""Tests for start-offset optimization."""

import numpy as np
import pytest

from repro.binding.instances import bind_instances
from repro.core.offsets import optimize_offsets
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.core.verify import verify_system_schedule
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.rtl.design import build_rtl
from repro.sim.simulator import SystemSimulator


def clashing_result():
    """Two processes whose adds are forced to relative step 0: without
    offsets both claim slot 0 and the pool is 2; offset 1 halves it."""
    library = default_library()
    system = SystemSpec(name="clash")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        graph.add_edge("a", "b")  # chain fills the 2-step deadline exactly
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=2))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": 2})
    )


class TestOptimizeOffsets:
    def test_zero_mobility_clash_resolved_by_offsets(self):
        result = clashing_result()
        assert result.global_instances("adder") == 2  # both on both slots
        outcome = optimize_offsets(result)
        # Chains occupy both slots each; rotation cannot help here —
        # demand is flat.  Outcome must simply never be worse.
        assert outcome.area_after <= outcome.area_before

    def test_single_op_processes_interleave(self):
        library = default_library()
        system = SystemSpec(name="s")
        for name in ("p1", "p2"):
            graph = DataFlowGraph(name=f"{name}-g")
            graph.add("a", OpKind.ADD)
            process = Process(name=name)
            process.add_block(Block(name="main", graph=graph, deadline=1))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        # Deadline 1 forces both adds onto relative step 0 -> same slot.
        assert result.global_instances("adder") == 2
        outcome = optimize_offsets(result)
        assert outcome.improved
        assert outcome.pools_after["adder"] == 1
        assert sorted(outcome.offsets.values()) == [0, 1]

    def test_offsets_roll_authorizations(self):
        result = clashing_result()
        base = result.authorization("p1", "adder").copy()
        result.start_offsets = {"p1": 1}
        rolled = result.authorization("p1", "adder")
        assert (rolled == np.roll(base, 1)).all()

    def test_offset_result_passes_full_stack(self):
        library = default_library()
        system = SystemSpec(name="s")
        for name in ("p1", "p2", "p3"):
            graph = DataFlowGraph(name=f"{name}-g")
            graph.add("a", OpKind.ADD)
            process = Process(name=name)
            process.add_block(Block(name="main", graph=graph, deadline=1))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2", "p3"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 3})
        )
        outcome = optimize_offsets(result)
        assert outcome.pools_after["adder"] == 1
        # Everything downstream must honor the offsets.
        report = verify_system_schedule(result)
        assert report.ok, str(report)
        bind_instances(result).validate()
        build_rtl(result).consistency_check()
        for seed in range(3):
            stats = SystemSimulator(result, seed=seed, trigger_probability=0.7)
            run = stats.run(400)
            assert run.ok, run.trace.render()
        # Peak concurrent usage stays within the reduced pool.
        assert result.instance_counts()["adder"] == 1

    def test_apply_false_leaves_result_untouched(self):
        result = clashing_result()
        optimize_offsets(result, apply=False)
        assert result.start_offsets == {}

    def test_greedy_path_used_beyond_limit(self):
        result = clashing_result()
        outcome = optimize_offsets(result, exhaustive_limit=1)
        assert outcome.area_after <= outcome.area_before

    def test_no_global_types_noop(self):
        library = default_library()
        system = SystemSpec(name="s")
        graph = DataFlowGraph(name="g")
        graph.add("a", OpKind.ADD)
        process = Process(name="p")
        process.add_block(Block(name="main", graph=graph, deadline=2))
        system.add_process(process)
        result = ModuloSystemScheduler(library).schedule(
            system, ResourceAssignment.all_local(library)
        )
        outcome = optimize_offsets(result)
        assert outcome.offsets == {}
        assert not outcome.improved
