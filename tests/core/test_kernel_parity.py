"""Decision parity of the batched force kernels (docs/performance.md).

The array kernels must change *how* forces are computed, never *which*
reduction wins: a ``use_kernels=True`` run of the coupled scheduler must
make the identical sequence of reduction decisions — same (process,
block, op, side) at every iteration — and land on the same schedules,
area, and telemetry counters as the scalar reference path.  Pinned over
the paper workload, a guarded/conditional workload, and 20 seeded
random systems (the ISSUE 7 acceptance oracle).

Counter equality is deliberately strict: the kernel engine mirrors the
scalar cache's classification (hits, misses, invalidations, assemblies,
evaluations) event for event, so any drift in the dirty-set or
staleness bookkeeping shows up here before it can perturb a decision.
"""

import pytest

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import Block, Process, SystemSpec
from repro.obs import Tracer
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.forces import area_weights
from repro.workloads import (
    mode_switching_filter,
    paper_assignment,
    paper_periods,
    paper_system,
    random_dfg,
)


def run_scheduler(system, library, assignment, periods, *, use_kernels, weights=None):
    """One traced run; returns (decisions, starts, area, counters)."""
    tracer = Tracer()
    scheduler = ModuloSystemScheduler(
        library, weights=weights, use_kernels=use_kernels, tracer=tracer
    )
    result = scheduler.schedule(system, assignment, periods)
    decisions = [
        (e.attrs["process"], e.attrs["block"], e.attrs["op"], e.attrs["side"])
        for e in tracer.events_named("reduction")
    ]
    starts = {key: sched.starts for key, sched in result.block_schedules.items()}
    return decisions, starts, result.total_area(), tracer.counters.as_dict()


def assert_parity(system_factory, library, assignment_factory, periods, weights=None):
    """Kernel and scalar runs must agree on every decision and counter."""
    kernel = run_scheduler(
        system_factory(),
        library,
        assignment_factory(),
        periods,
        use_kernels=True,
        weights=weights,
    )
    scalar = run_scheduler(
        system_factory(),
        library,
        assignment_factory(),
        periods,
        use_kernels=False,
        weights=weights,
    )
    assert kernel[0] == scalar[0], "reduction sequences diverged"
    assert kernel[1] == scalar[1], "final schedules diverged"
    assert kernel[2] == scalar[2], "total area diverged"
    assert kernel[3] == scalar[3], "telemetry counters diverged"
    return kernel[3]


class TestPaperSystemParity:
    def test_paper_system_identical_decisions_and_schedule(self):
        _system, library = paper_system()

        counters = assert_parity(
            lambda: paper_system()[0],
            library,
            lambda: paper_assignment(library),
            paper_periods(),
            weights=area_weights(library),
        )
        assert counters.get("force_evaluations", 0) > 0


class TestGuardedWorkloadParity:
    def test_mode_switching_system(self):
        """Guarded footprints take the scalar fallback inside the kernel
        engine; decisions and counters still match the reference path."""
        library = default_library()

        def build_system():
            system = SystemSpec(name="modal")
            for index, taps in enumerate((3, 4)):
                graph = mode_switching_filter(taps, name=f"g{index}")
                deadline = graph.critical_path_length(library.latency_of) + 4
                process = Process(name=f"p{index}")
                process.add_block(
                    Block(name="main", graph=graph, deadline=deadline)
                )
                system.add_process(process)
            return system

        def build_assignment():
            return ResourceAssignment.all_global(library, build_system())

        periods = PeriodAssignment(
            {name: 3 for name in build_assignment().global_types}
        )
        assert_parity(build_system, library, build_assignment, periods)


class TestRandomPopulationParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_system(self, seed):
        library = default_library()

        def build_system():
            system = SystemSpec(name=f"rand{seed}")
            for index in range(3):
                graph = random_dfg(8, seed=100 * seed + index)
                deadline = graph.critical_path_length(library.latency_of) + 4
                process = Process(name=f"p{index}")
                process.add_block(
                    Block(name="main", graph=graph, deadline=deadline)
                )
                system.add_process(process)
            return system

        def build_assignment():
            return ResourceAssignment.all_global(library, build_system())

        periods = PeriodAssignment(
            {name: 4 for name in build_assignment().global_types}
        )
        assert_parity(build_system, library, build_assignment, periods)


class TestModificationTogglesParity:
    """The kernel engine must agree with the scalar path in every
    alignment/balancing mode, not just the full modification."""

    @pytest.mark.parametrize(
        "alignment,balancing",
        [(True, True), (True, False), (False, False)],
    )
    def test_toggle_parity(self, alignment, balancing):
        library = default_library()

        def build_system():
            system = SystemSpec(name="toggles")
            for index in range(3):
                graph = random_dfg(8, seed=4242 + index)
                deadline = graph.critical_path_length(library.latency_of) + 4
                process = Process(name=f"p{index}")
                process.add_block(
                    Block(name="main", graph=graph, deadline=deadline)
                )
                system.add_process(process)
            return system

        def build_assignment():
            return ResourceAssignment.all_global(library, build_system())

        periods = PeriodAssignment(
            {name: 4 for name in build_assignment().global_types}
        )

        def run(use_kernels):
            tracer = Tracer()
            scheduler = ModuloSystemScheduler(
                library,
                periodical_alignment=alignment,
                global_balancing=balancing,
                use_kernels=use_kernels,
                tracer=tracer,
            )
            result = scheduler.schedule(
                build_system(), build_assignment(), periods
            )
            starts = {
                key: sched.starts
                for key, sched in result.block_schedules.items()
            }
            return starts, result.total_area(), tracer.counters.as_dict()

        assert run(True) == run(False)
