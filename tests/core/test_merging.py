"""Tests for the process-merging baseline."""

import pytest

from repro.errors import SpecificationError
from repro.core.merging import merge_system, schedule_merged
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.library import default_library
from repro.workloads import paper_system


def simple_system(repeats=False, extra_block=False):
    system = SystemSpec(name="s")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add_edge("a", "m")
        process = Process(name=name)
        process.add_block(
            Block(name="main", graph=graph, deadline=6, repeats=repeats)
        )
        if extra_block:
            g2 = DataFlowGraph(name=f"{name}-g2")
            g2.add("x", OpKind.ADD)
            process.add_block(Block(name="tail", graph=g2, deadline=3))
        system.add_process(process)
    return system


class TestMergeSystem:
    def test_merges_operations_with_prefixes(self):
        block = merge_system(simple_system())
        assert sorted(block.graph.op_ids) == [
            "p1.a", "p1.m", "p2.a", "p2.m",
        ]
        assert ("p1.a", "p1.m") in block.graph.edges

    def test_deadline_is_max(self):
        system = simple_system()
        system.process("p2").blocks[0].deadline = 9
        assert merge_system(system).deadline == 9

    def test_repeating_blocks_rejected(self):
        with pytest.raises(SpecificationError, match="unpredictable"):
            merge_system(simple_system(repeats=True))

    def test_multi_block_processes_rejected(self):
        with pytest.raises(SpecificationError, match="exactly one"):
            merge_system(simple_system(extra_block=True))

    def test_paper_note_processes_could_be_merged(self):
        """§7: 'although these processes can be merged into one' — the
        merge itself succeeds; only the spontaneous triggering makes it
        semantically wrong."""
        system, __ = paper_system()
        # paper diffeq blocks repeat; drop the flag to model a merged build
        for process in system.processes:
            process.blocks[0].repeats = False
        block = merge_system(system)
        assert len(block.graph) == system.operation_count


class TestScheduleMerged:
    def test_merged_counts_are_pooled(self):
        library = default_library()
        __, counts, area = schedule_merged(simple_system(), library)
        # 2 adds + 2 muls in 6 steps: a single adder and multiplier do.
        assert counts == {"adder": 1, "multiplier": 1}
        assert area == 5.0

    def test_merged_beats_local_on_deterministic_system(self):
        """For simultaneously released processes merging is maximal
        sharing (no period constraints at all)."""
        from repro.core.scheduler import ModuloSystemScheduler
        from repro.resources.assignment import ResourceAssignment

        library = default_library()
        system = simple_system()
        local = ModuloSystemScheduler(library).schedule(
            system, ResourceAssignment.all_local(library)
        )
        __, __, merged_area = schedule_merged(simple_system(), library)
        assert merged_area <= local.total_area()
