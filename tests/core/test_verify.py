"""Tests for the static verifier."""

import pytest

from repro.errors import VerificationError
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.core.verify import VerificationReport, verify, verify_system_schedule
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def scheduled_system():
    library = default_library()
    system = SystemSpec(name="s")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a0", OpKind.ADD)
        graph.add("a1", OpKind.ADD)
        graph.add_edge("a0", "a1")
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=4))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    result = ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": 2})
    )
    return result


class TestVerificationReport:
    def test_empty_report_is_ok(self):
        assert VerificationReport().ok

    def test_failures_collected(self):
        report = VerificationReport()
        report.add("good", True)
        report.add("bad", False, "boom")
        assert not report.ok
        assert [c.name for c in report.failures()] == ["bad"]

    def test_raise_on_failure(self):
        report = VerificationReport()
        report.add("bad", False, "boom")
        with pytest.raises(VerificationError, match="boom"):
            report.raise_on_failure()

    def test_str_rendering(self):
        report = VerificationReport()
        report.add("good", True)
        report.add("bad", False, "boom")
        text = str(report)
        assert "[ok ] good" in text
        assert "[FAIL] bad (boom)" in text


class TestVerifySystemSchedule:
    def test_scheduler_output_verifies(self):
        report = verify_system_schedule(scheduled_system())
        assert report.ok, str(report)

    def test_verify_raises_nothing_on_good_result(self):
        verify(scheduled_system())

    def test_tampered_start_detected(self):
        result = scheduled_system()
        sched = result.block_schedules[("p1", "main")]
        sched.starts["a1"] = sched.starts["a0"]  # violate precedence
        report = verify_system_schedule(result)
        assert not report.ok
        assert any("block p1/main" in c.name for c in report.failures())

    def test_deadline_overrun_detected(self):
        result = scheduled_system()
        sched = result.block_schedules[("p2", "main")]
        # Push both ops past the block deadline but keep precedence.
        sched.starts["a0"] = 4
        sched.starts["a1"] = 5
        sched.deadline = 8  # keep usage profile machinery in range
        report = verify_system_schedule(result)
        assert not report.ok

    def test_report_lists_pool_sizes(self):
        report = verify_system_schedule(scheduled_system())
        pool_checks = [c for c in report.checks if c.name.startswith("global pool")]
        assert pool_checks and all(c.ok for c in pool_checks)
