"""Tests for the automatic scope-selection heuristic."""

import pytest

from repro.core.auto_assignment import (
    auto_assignment,
    decide_scopes,
    process_utilization,
)
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.library import default_library
from repro.workloads import paper_system


def system_of(spec):
    """spec: {process: (n_muls, n_adds, deadline)}."""
    system = SystemSpec(name="s")
    for name, (n_muls, n_adds, deadline) in spec.items():
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_muls):
            graph.add(f"m{i}", OpKind.MUL)
        for i in range(n_adds):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    return system


class TestUtilization:
    def test_utilization_is_busy_over_deadline(self):
        library = default_library()
        system = system_of({"p": (0, 4, 8)})
        process = system.process("p")
        adder = library.type("adder")
        assert process_utilization(process, library, adder) == pytest.approx(0.5)

    def test_unused_type_zero(self):
        library = default_library()
        system = system_of({"p": (0, 4, 8)})
        mult = library.type("multiplier")
        assert process_utilization(system.process("p"), library, mult) == 0.0


class TestDecideScopes:
    def test_low_utilization_shared(self):
        """1 mult op per process over 10 steps: utilization 0.1 each —
        a single global multiplier should serve all three."""
        library = default_library()
        system = system_of(
            {"p1": (1, 0, 10), "p2": (1, 0, 10), "p3": (1, 0, 10)}
        )
        decisions = {d.type_name: d for d in decide_scopes(system, library)}
        assert decisions["multiplier"].make_global
        assert decisions["multiplier"].local_estimate == 3
        assert decisions["multiplier"].global_estimate == 1
        assert decisions["multiplier"].area_saving == pytest.approx(8.0)

    def test_high_utilization_stays_local(self):
        """Fully busy adders gain nothing from sharing."""
        library = default_library()
        system = system_of({"p1": (0, 8, 8), "p2": (0, 8, 8)})
        decisions = {d.type_name: d for d in decide_scopes(system, library)}
        assert not decisions["adder"].make_global

    def test_single_user_types_not_considered(self):
        library = default_library()
        system = system_of({"p1": (1, 1, 8), "p2": (0, 1, 8)})
        names = [d.type_name for d in decide_scopes(system, library)]
        assert "multiplier" not in names  # only p1 multiplies
        assert "adder" in names

    def test_min_saving_threshold(self):
        library = default_library()
        system = system_of({"p1": (1, 0, 10), "p2": (1, 0, 10)})
        generous = decide_scopes(system, library, min_saving=0.0)
        strict = decide_scopes(system, library, min_saving=100.0)
        assert any(d.make_global for d in generous)
        assert not any(d.make_global for d in strict)


class TestAutoAssignment:
    def test_builds_valid_assignment(self):
        library = default_library()
        system = system_of(
            {"p1": (1, 2, 10), "p2": (1, 2, 10), "p3": (0, 2, 10)}
        )
        assignment = auto_assignment(system, library)
        assignment.validate(system)
        assert assignment.is_global("multiplier")
        assert assignment.group("multiplier") == ["p1", "p2"]

    def test_paper_system_shares_the_multiplier(self):
        system, library = paper_system()
        assignment = auto_assignment(system, library)
        assert assignment.is_global("multiplier")
        assert set(assignment.group("multiplier")) == {"p1", "p2", "p3", "p4", "p5"}
