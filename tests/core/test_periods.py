"""Tests for repro.core.periods (step S2)."""

import pytest

from repro.errors import PeriodError
from repro.core.periods import (
    PeriodAssignment,
    candidate_periods,
    divisors,
    enumerate_period_assignments,
    enumerate_period_assignments_capped,
    is_harmonic,
    lcm_all,
    suggest_periods,
)
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import paper_assignment, paper_system


class TestHelpers:
    def test_lcm_all(self):
        assert lcm_all([]) == 1
        assert lcm_all([4]) == 4
        assert lcm_all([4, 6]) == 12
        assert lcm_all([3, 5, 15]) == 15

    def test_divisors(self):
        assert divisors(1) == [1]
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(15) == [1, 3, 5, 15]

    def test_divisors_of_nonpositive_rejected(self):
        with pytest.raises(PeriodError):
            divisors(0)

    def test_is_harmonic(self):
        assert is_harmonic([5, 10, 20])
        assert is_harmonic([15, 15])
        assert is_harmonic([7])
        assert is_harmonic([])
        assert not is_harmonic([4, 6])


class TestPeriodAssignment:
    def test_lookup(self):
        periods = PeriodAssignment({"adder": 15})
        assert periods.period("adder") == 15
        assert "adder" in periods
        assert "multiplier" not in periods

    def test_missing_period_rejected(self):
        with pytest.raises(PeriodError, match="no period"):
            PeriodAssignment({}).period("adder")

    def test_nonpositive_period_rejected(self):
        with pytest.raises(PeriodError, match=">= 1"):
            PeriodAssignment({"adder": 0})

    def test_grid_spacing_is_lcm(self):
        periods = PeriodAssignment({"a": 4, "b": 6})
        assert periods.grid_spacing(["a", "b"]) == 12
        assert periods.grid_spacing(["a"]) == 4
        assert periods.grid_spacing([]) == 1

    def test_validate_against_assignment(self):
        library = default_library()
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        PeriodAssignment({"adder": 5}).validate(assignment)
        with pytest.raises(PeriodError, match="has no period"):
            PeriodAssignment({}).validate(assignment)
        with pytest.raises(PeriodError, match="non-global"):
            PeriodAssignment({"adder": 5, "multiplier": 5}).validate(assignment)

    def test_process_grid(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        periods = PeriodAssignment(
            {"adder": 5, "multiplier": 15, "subtracter": 15}
        )
        assert periods.process_grid(assignment, "p1") == 15  # adder+mult
        assert periods.process_grid(assignment, "p4") == 15


class TestCandidates:
    def test_candidates_capped_by_smallest_deadline(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        candidates = candidate_periods(system, assignment, "adder")
        # Deadlines 30/30/25/15/15: divisors <= 15.
        assert max(candidates) == 15
        assert 1 in candidates
        assert 5 in candidates
        assert 15 in candidates
        assert 25 not in candidates

    def test_subtracter_candidates_from_diffeq_only(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        candidates = candidate_periods(system, assignment, "subtracter")
        assert candidates == [1, 3, 5, 15]


class TestEnumeration:
    def test_enumeration_filters_harmonic(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        assignments = enumerate_period_assignments(system, assignment)
        assert assignments  # something survives
        for periods in assignments:
            values = [periods.period(t) for t in assignment.global_types]
            # Per-process harmonics imply adder/multiplier pair harmonic.
            assert is_harmonic(values[:2])

    def test_paper_choice_is_among_candidates(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        assignments = enumerate_period_assignments(system, assignment)
        target = {"adder": 15, "multiplier": 15, "subtracter": 15}
        assert any(p.as_dict == target for p in assignments)

    def test_limit_guard(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        with pytest.raises(PeriodError, match="limit"):
            enumerate_period_assignments(system, assignment, limit=2)

    def test_no_global_types_yields_empty_assignment(self):
        system, library = paper_system()
        assignment = ResourceAssignment(library)
        assignments = enumerate_period_assignments(system, assignment)
        assert len(assignments) == 1
        assert assignments[0].as_dict == {}

    def test_max_grid_filter(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        assignments = enumerate_period_assignments(system, assignment, max_grid=5)
        for periods in assignments:
            for process in system.processes:
                assert periods.process_grid(assignment, process.name) <= 5


class TestCappedEnumeration:
    def test_complete_when_under_limit(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        full = enumerate_period_assignments(system, assignment)
        capped, dropped = enumerate_period_assignments_capped(
            system, assignment
        )
        assert dropped == 0
        assert [p.as_dict for p in capped] == [p.as_dict for p in full]

    def test_truncates_with_dropped_count(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        full = enumerate_period_assignments(system, assignment)
        capped, dropped = enumerate_period_assignments_capped(
            system, assignment, limit=3
        )
        assert len(capped) == 3
        assert dropped > 0
        # Deterministic prefix of the full enumeration order.
        assert [p.as_dict for p in capped] == [p.as_dict for p in full[:3]]

    def test_no_global_types(self):
        system, library = paper_system()
        assignment = ResourceAssignment(library)
        capped, dropped = enumerate_period_assignments_capped(
            system, assignment
        )
        assert dropped == 0
        assert len(capped) == 1 and capped[0].as_dict == {}


class TestSuggestion:
    def test_min_deadline_strategy_reproduces_paper(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        periods = suggest_periods(system, assignment, strategy="min-deadline")
        assert periods.as_dict == {
            "adder": 15,
            "multiplier": 15,
            "subtracter": 15,
        }

    def test_gcd_strategy(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        periods = suggest_periods(system, assignment, strategy="gcd")
        # gcd(30, 30, 25, 15, 15) = 5 for adder/multiplier.
        assert periods.period("adder") == 5
        assert periods.period("subtracter") == 15

    def test_unknown_strategy_rejected(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        with pytest.raises(PeriodError, match="unknown period strategy"):
            suggest_periods(system, assignment, strategy="magic")


class TestEnumerationSize:
    def test_paper_system_bound(self):
        from repro.core.periods import estimate_enumeration_size

        system, library = paper_system()
        assignment = paper_assignment(library)
        size = estimate_enumeration_size(system, assignment)
        survivors = enumerate_period_assignments(system, assignment)
        # Unfiltered permutation space: adder/mult 7 candidates each,
        # subtracter 4 -> 196; eq. 3 filters most of it away (§6: "most
        # sets are filtered out by equation 3 before scheduling").
        assert size == 7 * 7 * 4 == 196
        assert len(survivors) < size / 2

    def test_empty_for_all_local(self):
        from repro.core.periods import estimate_enumeration_size

        system, library = paper_system()
        assignment = ResourceAssignment(library)
        assert estimate_enumeration_size(system, assignment) == 1
