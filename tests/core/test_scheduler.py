"""Behavioral tests for the modulo system scheduler (step S3)."""

import pytest

from repro.errors import SchedulingError
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.core.verify import verify_system_schedule
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.ifds import ImprovedForceDirectedScheduler


def adds_block(name, n_ops, deadline, prefix="x"):
    graph = DataFlowGraph(name=f"{name}-g")
    for i in range(n_ops):
        graph.add(f"{prefix}{i}", OpKind.ADD)
    return Block(name=name, graph=graph, deadline=deadline)


def single_block_system(process_specs):
    """process_specs: list of (process_name, n_adds, deadline)."""
    system = SystemSpec(name="s")
    for name, n_ops, deadline in process_specs:
        process = Process(name=name)
        process.add_block(adds_block("main", n_ops, deadline))
        system.add_process(process)
    return system


@pytest.fixture
def library():
    return default_library()


class TestBaselineEquivalence:
    def test_all_local_matches_per_block_ifds(self, library):
        """Without global types the coupled run degenerates to plain IFDS."""
        system = single_block_system([("p1", 3, 5), ("p2", 4, 6)])
        result = ModuloSystemScheduler(library).schedule(
            system, ResourceAssignment.all_local(library)
        )
        for process in system.processes:
            block = process.blocks[0]
            solo = ImprovedForceDirectedScheduler(library).schedule(block)
            assert result.schedule_of(process.name, "main").starts == solo.starts

    def test_missing_periods_for_global_types_rejected(self, library):
        system = single_block_system([("p1", 2, 4), ("p2", 2, 4)])
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        with pytest.raises(SchedulingError, match="PeriodAssignment"):
            ModuloSystemScheduler(library).schedule(system, assignment)


class TestGlobalSharing:
    def test_two_processes_share_one_adder_via_slot_separation(self, library):
        """Two 1-add processes, period 2: alignment to different slots
        lets a single adder serve both."""
        system = single_block_system([("p1", 1, 2), ("p2", 1, 2)])
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        assert result.global_instances("adder") == 1
        assert result.total_area() == 1.0

    def test_global_never_worse_than_sum_of_local_peaks(self, library):
        system = single_block_system([("p1", 3, 6), ("p2", 2, 6), ("p3", 4, 6)])
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2", "p3"])
        global_result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 3})
        )
        local_result = ModuloSystemScheduler(library).schedule(
            single_block_system([("p1", 3, 6), ("p2", 2, 6), ("p3", 4, 6)]),
            ResourceAssignment.all_local(library),
        )
        assert global_result.total_area() <= local_result.total_area()

    def test_periodic_alignment_within_one_block(self, library):
        """Figure 2: two free ops in range 4, period 2 — the modified
        algorithm parks both on the same period slot."""
        system = single_block_system([("p1", 2, 4), ("p2", 1, 2)])
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        sched = result.schedule_of("p1", "main")
        starts = sorted(sched.starts.values())
        assert starts[0] % 2 == starts[1] % 2  # same slot
        assert starts[0] != starts[1]  # but different steps
        # p1's authorization then occupies one slot, p2 takes the other.
        assert result.global_instances("adder") == 1

    def test_multi_block_process_balancing(self, library):
        """Two blocks of one process may claim the same slot without
        increasing the pool (they never overlap, eq. 9)."""
        process = Process(name="p1")
        process.add_block(adds_block("b1", 1, 2))
        process.add_block(adds_block("b2", 1, 2))
        other = Process(name="p2")
        other.add_block(adds_block("main", 1, 2))
        system = SystemSpec(name="s")
        system.add_process(process)
        system.add_process(other)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        assert result.global_instances("adder") == 1

    def test_mixed_scope_types(self, library):
        """Global adder, local multiplier in the same system."""
        system = SystemSpec(name="s")
        for name in ("p1", "p2"):
            graph = DataFlowGraph(name=f"{name}-g")
            graph.add("a", OpKind.ADD)
            graph.add("m", OpKind.MUL)
            process = Process(name=name)
            process.add_block(Block(name="main", graph=graph, deadline=4))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        counts = result.instance_counts()
        assert counts["adder"] == 1  # shared pool
        assert counts["multiplier"] == 2  # one per process

    def test_result_passes_static_verification(self, library):
        system = single_block_system([("p1", 3, 5), ("p2", 2, 5)])
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 5})
        )
        report = verify_system_schedule(result)
        assert report.ok, str(report)


class TestAblationFlags:
    def make(self, library, **kwargs):
        system = single_block_system([("p1", 2, 4), ("p2", 2, 4)])
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        scheduler = ModuloSystemScheduler(library, **kwargs)
        return scheduler.schedule(system, assignment, PeriodAssignment({"adder": 2}))

    def test_alignment_disabled_still_valid(self, library):
        result = self.make(library, periodical_alignment=False)
        assert verify_system_schedule(result).ok

    def test_balancing_disabled_still_valid(self, library):
        result = self.make(library, global_balancing=False)
        assert verify_system_schedule(result).ok

    def test_full_modification_not_worse(self, library):
        full = self.make(library)
        plain = self.make(library, periodical_alignment=False)
        assert full.total_area() <= plain.total_area()


class TestDeterminism:
    def test_repeat_runs_identical(self, library):
        def run():
            system = single_block_system([("p1", 3, 6), ("p2", 3, 6)])
            assignment = ResourceAssignment(library)
            assignment.make_global("adder", ["p1", "p2"])
            return ModuloSystemScheduler(library).schedule(
                system, assignment, PeriodAssignment({"adder": 3})
            )

        first, second = run(), run()
        for key in first.block_schedules:
            assert first.block_schedules[key].starts == second.block_schedules[key].starts
        assert first.iterations == second.iterations
