"""Tests for the heuristic period search."""

import pytest

from repro.core.period_search import optimize_periods
from repro.core.periods import PeriodAssignment, enumerate_period_assignments
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def build_problem():
    library = default_library()
    system = SystemSpec(name="search")
    for name, n_adds in (("p1", 3), ("p2", 2), ("p3", 2)):
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_adds):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=12))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2", "p3"])
    return system, library, assignment


class TestOptimizePeriods:
    def test_returns_valid_outcome(self):
        system, library, assignment = build_problem()
        outcome = optimize_periods(system, library, assignment, budget=10)
        outcome.result.validate()
        assert outcome.evaluations <= 10
        assert outcome.periods.period("adder") >= 1
        assert outcome.trace  # at least the seed evaluation

    def test_never_worse_than_seed(self):
        system, library, assignment = build_problem()
        seed_result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 12})
        )
        outcome = optimize_periods(system, library, assignment, budget=15)
        assert outcome.area <= seed_result.total_area()

    def test_matches_enumeration_optimum_within_budget(self):
        system, library, assignment = build_problem()
        candidates = enumerate_period_assignments(system, assignment)
        scheduler = ModuloSystemScheduler(library)
        best_area = min(
            scheduler.schedule(system, assignment, periods).total_area()
            for periods in candidates
        )
        outcome = optimize_periods(system, library, assignment, budget=50)
        assert outcome.area == pytest.approx(best_area)

    def test_budget_one_returns_seed(self):
        system, library, assignment = build_problem()
        outcome = optimize_periods(system, library, assignment, budget=1)
        assert outcome.evaluations == 1
        assert outcome.periods.period("adder") == 12  # min-deadline seed

    def test_deterministic(self):
        system, library, assignment = build_problem()
        o1 = optimize_periods(system, library, assignment, budget=12)
        system2, library2, assignment2 = build_problem()
        o2 = optimize_periods(system2, library2, assignment2, budget=12)
        assert o1.periods.as_dict == o2.periods.as_dict
        assert o1.area == o2.area

    def test_prune_with_bounds_same_best_area(self):
        system, library, assignment = build_problem()
        plain = optimize_periods(system, library, assignment, budget=50)
        pruned = optimize_periods(
            system, library, assignment, budget=50, prune_with_bounds=True
        )
        assert pruned.area == plain.area
        assert plain.pruned == 0
        assert pruned.evaluations <= plain.evaluations

    def test_no_global_types(self):
        library = default_library()
        system = SystemSpec(name="s")
        graph = DataFlowGraph(name="g")
        graph.add("a", OpKind.ADD)
        process = Process(name="p")
        process.add_block(Block(name="main", graph=graph, deadline=4))
        system.add_process(process)
        assignment = ResourceAssignment(library)
        outcome = optimize_periods(system, library, assignment, budget=5)
        assert outcome.periods.as_dict == {}
