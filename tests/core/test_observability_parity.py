"""Decision parity of the observability layer (PR 6 acceptance gate).

Every observability feature — the decision audit trail, the typed
histogram/gauge instruments, and live event streaming through a bus —
must *observe* the scheduler, never steer it: enabling any of them must
leave the reduction-decision sequence, the final starts, and the total
area byte-identical to a plain traced run.  Pinned here over the paper
workload and a population of seeded random systems, one test class per
feature.
"""

import pytest

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import Block, Process, SystemSpec
from repro.obs import AuditTrail, EventBus, Tracer
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.forces import area_weights
from repro.workloads import (
    paper_assignment,
    paper_periods,
    paper_system,
    random_dfg,
)

RANDOM_SEEDS = range(10)


def _random_workload(seed):
    library = default_library()

    def build_system():
        system = SystemSpec(name=f"obs{seed}")
        for index in range(3):
            graph = random_dfg(8, seed=500 * seed + index)
            deadline = graph.critical_path_length(library.latency_of) + 4
            process = Process(name=f"p{index}")
            process.add_block(
                Block(name="main", graph=graph, deadline=deadline)
            )
            system.add_process(process)
        return system

    def build_assignment():
        return ResourceAssignment.all_global(library, build_system())

    periods = PeriodAssignment(
        {name: 4 for name in build_assignment().global_types}
    )
    return library, build_system, build_assignment, periods


def _paper_workload():
    _, library = paper_system()

    def build_system():
        return paper_system()[0]

    def build_assignment():
        return paper_assignment(library)

    return library, build_system, build_assignment, paper_periods()


WORKLOADS = [("paper", _paper_workload)] + [
    (f"random{seed}", lambda seed=seed: _random_workload(seed))
    for seed in RANDOM_SEEDS
]


def _run(workload, *, tracer=None, audit=None):
    """One run; returns (decisions, starts, area)."""
    library, build_system, build_assignment, periods = workload
    tracer = tracer if tracer is not None else Tracer()
    scheduler = ModuloSystemScheduler(
        library,
        weights=area_weights(library),
        tracer=tracer,
        audit=audit,
    )
    result = scheduler.schedule(
        build_system(), build_assignment(), periods
    )
    decisions = [
        (e.attrs["process"], e.attrs["block"], e.attrs["op"], e.attrs["side"])
        for e in tracer.events_named("reduction")
    ]
    starts = {
        key: sched.starts for key, sched in result.block_schedules.items()
    }
    return decisions, starts, result.total_area()


@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[n for n, _ in WORKLOADS]
)
class TestAuditParity:
    def test_audit_trail_never_changes_decisions(self, factory):
        workload = factory()
        base = _run(factory())
        audit = AuditTrail()
        audited = _run(workload, audit=audit)
        assert audited == base
        # The trail mirrors the event stream decision for decision.
        assert [
            (d.process, d.block, d.op, d.side) for d in audit.decisions
        ] == base[0][-len(audit.decisions):]


@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[n for n, _ in WORKLOADS]
)
class TestHistogramParity:
    def test_typed_instruments_never_change_decisions(self, factory):
        """The traced arm records histograms/gauges (select latency,
        scores, frames-remaining) through the ambient registry; the
        baseline arm schedules with everything disabled.  Results must
        match exactly."""
        library, build_system, build_assignment, periods = factory()
        plain = ModuloSystemScheduler(
            library, weights=area_weights(library)
        ).schedule(build_system(), build_assignment(), periods)

        tracer = Tracer()
        decisions, starts, area = _run(factory(), tracer=tracer)
        assert area == plain.total_area()
        assert starts == {
            key: sched.starts
            for key, sched in plain.block_schedules.items()
        }
        summary = tracer.summary()
        assert summary["histograms"]["reduction_score"]["count"] == len(
            decisions
        )
        assert summary["gauges"]["frames_remaining"]["samples"] == len(
            decisions
        )


@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[n for n, _ in WORKLOADS]
)
class TestEventStreamingParity:
    def test_bus_subscribers_never_change_decisions(self, factory):
        base = _run(factory())
        bus = EventBus()
        streamed = []
        bus.subscribe(
            lambda event: streamed.append((event.name, dict(event.attrs)))
        )
        live = _run(factory(), tracer=Tracer(bus=bus))
        assert live == base
        # The bus saw every reduction event, in order, as it happened.
        assert [
            (a["process"], a["block"], a["op"], a["side"])
            for name, a in streamed
            if name == "reduction"
        ] == base[0]

    def test_raising_subscriber_never_changes_decisions(self, factory):
        base = _run(factory())
        bus = EventBus()

        def broken(event):
            raise RuntimeError("observer crash")

        bus.subscribe(broken)
        live = _run(factory(), tracer=Tracer(bus=bus))
        assert live == base
