"""Tests for repro.core.balancing (eq. 9 and the system sum)."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.core.balancing import balance, process_max, system_sum


class TestProcessMax:
    def test_pointwise_maximum(self):
        a = np.array([1.0, 0.0, 2.0])
        b = np.array([0.5, 3.0, 1.0])
        assert process_max([a, b], 3).tolist() == [1.0, 3.0, 2.0]

    def test_empty_process_is_zero(self):
        assert process_max([], 4).tolist() == [0.0] * 4

    def test_single_block_identity(self):
        a = np.array([1.0, 2.0])
        assert process_max([a], 2).tolist() == [1.0, 2.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SchedulingError, match="shape"):
            process_max([np.zeros(3)], 4)


class TestSystemSum:
    def test_sum_across_processes(self):
        a = np.array([1.0, 0.0])
        b = np.array([2.0, 1.0])
        assert system_sum([a, b], 2).tolist() == [3.0, 1.0]

    def test_empty_group_is_zero(self):
        assert system_sum([], 3).tolist() == [0.0] * 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SchedulingError, match="shape"):
            system_sum([np.zeros(2)], 3)


class TestBalance:
    def test_max_then_sum(self):
        p1_blocks = [np.array([1.0, 0.0]), np.array([0.0, 2.0])]
        p2_blocks = [np.array([1.0, 1.0])]
        result = balance([p1_blocks, p2_blocks], 2)
        # p1 max = [1, 2]; p2 max = [1, 1]; sum = [2, 3].
        assert result.tolist() == [2.0, 3.0]

    def test_blocks_within_process_do_not_add(self):
        """C2: blocks of one process are like alternation branches."""
        blocks = [np.array([1.0]), np.array([1.0]), np.array([1.0])]
        assert balance([blocks], 1).tolist() == [1.0]

    def test_processes_do_add(self):
        one = [np.array([1.0])]
        assert balance([one, one, one], 1).tolist() == [3.0]
