"""Adversarial tests for the static verifier.

The verifier is the last line of defense: these tests take a correct
schedule and tamper with it — shifted start times, understated
authorizations, lying pool sizes — asserting that every corruption is
caught.  A verifier that only ever sees honest schedules proves nothing.
"""

from unittest import mock

import numpy as np
import pytest

from repro.core.periods import PeriodAssignment
from repro.core.result import SystemSchedule
from repro.core.scheduler import ModuloSystemScheduler
from repro.core.verify import verify, verify_system_schedule
from repro.errors import VerificationError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def scheduled_system():
    """Two processes sharing adders globally, with local multipliers."""
    library = default_library()
    system = SystemSpec(name="adv")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a0", OpKind.ADD)
        graph.add("a1", OpKind.ADD)
        graph.add("m0", OpKind.MUL)
        graph.add_edge("a0", "a1")
        graph.add_edge("a1", "m0")
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=8))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": 4})
    )


@pytest.fixture
def result():
    return scheduled_system()


def failing_checks(result):
    return [c.name for c in verify_system_schedule(result).failures()]


class TestHonestBaseline:
    def test_untampered_schedule_verifies(self, result):
        report = verify_system_schedule(result)
        assert report.ok, str(report)
        verify(result)  # must not raise

    def test_verification_error_carries_code(self, result):
        sched = result.schedule_of("p1", "main")
        sched.starts["a1"] = sched.starts["a0"]  # break precedence
        with pytest.raises(VerificationError) as excinfo:
            verify(result)
        assert excinfo.value.code == "VERIFY"


class TestTamperedStarts:
    def test_precedence_violation_is_caught(self, result):
        sched = result.schedule_of("p1", "main")
        # a1 must start after a0 finishes; pull it onto the same step.
        sched.starts["a1"] = sched.starts["a0"]
        assert "block p1/main" in failing_checks(result)

    def test_deadline_violation_is_caught(self, result):
        sched = result.schedule_of("p2", "main")
        last = max(sched.starts, key=sched.starts.get)
        sched.starts[last] = 40  # way past deadline 8
        assert "block p2/main" in failing_checks(result)

    def test_negative_start_is_caught(self, result):
        sched = result.schedule_of("p1", "main")
        sched.starts["a0"] = -1
        assert "block p1/main" in failing_checks(result)


class TestTamperedAuthorizations:
    def test_understated_authorization_is_caught(self, result):
        period = result.periods.period("adder")
        zero = np.zeros(period, dtype=int)
        with mock.patch.object(
            SystemSchedule, "authorization", return_value=zero
        ):
            failed = failing_checks(result)
        assert any(name.startswith("authorization") for name in failed)


class TestTamperedPoolSizes:
    def test_understated_global_pool_is_caught(self, result):
        with mock.patch.object(
            SystemSchedule, "global_instances", return_value=0
        ):
            failed = failing_checks(result)
        assert "global pool adder" in failed

    def test_understated_local_count_is_caught(self, result):
        with mock.patch.object(
            SystemSchedule, "local_instances", return_value=0
        ):
            failed = failing_checks(result)
        assert any(name.startswith("local") for name in failed)

    def test_overstated_pool_passes_but_is_not_hidden(self, result):
        """An oversized pool is wasteful, not unsafe: verify stays green."""
        with mock.patch.object(
            SystemSchedule, "global_instances", return_value=99
        ):
            report = verify_system_schedule(result)
        assert report.ok
