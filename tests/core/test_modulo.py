"""Tests for repro.core.modulo (eqs. 1, 7, 8)."""

import numpy as np
import pytest

from repro.errors import PeriodError
from repro.core.modulo import (
    fold,
    modulo_delta,
    modulo_max,
    modulo_max_int,
    slot_steps,
)


class TestFold:
    def test_basic_mapping(self):
        assert fold(0, 3) == 0
        assert fold(7, 3) == 1
        assert fold(3, 3) == 0

    def test_invalid_period(self):
        with pytest.raises(PeriodError):
            fold(5, 0)


class TestSlotSteps:
    def test_figure1_style_authorization_steps(self):
        # Slot 1 of period 3 over 10 steps: all steps == 1 (mod 3).
        assert slot_steps(1, 3, 10) == [1, 4, 7]

    def test_slot_out_of_range(self):
        with pytest.raises(PeriodError, match="outside"):
            slot_steps(3, 3, 10)

    def test_period_longer_than_horizon(self):
        assert slot_steps(4, 8, 3) == []


class TestModuloMax:
    def test_exact_fold(self):
        values = [1.0, 0.0, 2.0, 3.0, 1.0, 0.5]
        assert modulo_max(values, 3).tolist() == [3.0, 1.0, 2.0]

    def test_period_equal_to_length_is_identity(self):
        values = [1.0, 2.0, 3.0]
        assert modulo_max(values, 3).tolist() == values

    def test_period_longer_than_values_pads_zero(self):
        assert modulo_max([1.0, 2.0], 4).tolist() == [1.0, 2.0, 0.0, 0.0]

    def test_non_multiple_length(self):
        values = [1.0, 5.0, 2.0, 4.0, 3.0]
        # slots: 0 -> max(1,3)=3 ; 1 -> max(5)=5... period 4:
        assert modulo_max(values, 4).tolist() == [3.0, 5.0, 2.0, 4.0]

    def test_period_one_takes_global_max(self):
        assert modulo_max([0.5, 3.0, 1.0], 1).tolist() == [3.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(PeriodError):
            modulo_max([1.0], 0)

    def test_dominates_pointwise(self):
        """Q(t mod P) >= D(t) for every t."""
        rng = np.random.default_rng(7)
        values = rng.random(17)
        folded = modulo_max(values, 5)
        for t, value in enumerate(values):
            assert folded[t % 5] >= value - 1e-12

    def test_integer_variant(self):
        folded = modulo_max_int([1, 0, 2, 3, 1, 0], 3)
        assert folded.dtype.kind == "i"
        assert folded.tolist() == [3, 1, 2]


class TestModuloDelta:
    def test_hidden_displacement_costs_nothing(self):
        """A positive displacement below the slot max does not change Q."""
        distribution = np.array([2.0, 0.0, 0.5, 0.0])
        delta = np.array([0.0, 0.0, 1.0, 0.0])  # slot 0 of period 2: max still 2
        change = modulo_delta(distribution, delta, 2)
        assert change.tolist() == [0.0, 0.0]

    def test_visible_displacement_changes_q(self):
        distribution = np.array([2.0, 0.0, 0.5, 0.0])
        delta = np.array([0.0, 0.0, 2.0, 0.0])  # slot 0 now peaks at 2.5
        change = modulo_delta(distribution, delta, 2)
        assert change.tolist() == [0.5, 0.0]

    def test_negative_displacement_only_counts_if_max_drops(self):
        distribution = np.array([2.0, 0.0, 2.0, 0.0])
        # Remove mass at step 0; step 2 still holds the slot max.
        delta = np.array([-1.0, 0.0, 0.0, 0.0])
        change = modulo_delta(distribution, delta, 2)
        assert change.tolist() == [0.0, 0.0]

    def test_delta_of_zero_is_zero(self):
        distribution = np.array([1.0, 2.0, 3.0])
        assert modulo_delta(distribution, np.zeros(3), 3).tolist() == [0, 0, 0]
