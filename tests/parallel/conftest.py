"""Shared fixtures for the parallel-exploration tests."""

from __future__ import annotations

import pytest

from repro.api import loads_problem
from repro.core.periods import enumerate_period_assignments

SMALL_TEXT = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
global multiplier p1 p2
global adder p1 p2
period multiplier 4
period adder 4
"""


@pytest.fixture
def small_problem():
    """Two tiny processes sharing a multiplier and an adder pool."""
    return loads_problem(SMALL_TEXT)


@pytest.fixture
def small_candidates(small_problem):
    candidates = enumerate_period_assignments(
        small_problem.system, small_problem.assignment
    )
    assert len(candidates) >= 4  # enough to exercise ordering and pruning
    return candidates
