"""Fault directives: parsing, injection, and deterministic fault plans."""

from __future__ import annotations

import time

import pytest

from repro.errors import SpecificationError
from repro.parallel import FaultPlan, inject_fault, load_jsonl_tolerant, parse_fault
from repro.parallel.jobs import FAULT_KINDS


class TestParseFault:
    def test_known_kinds_parse(self):
        assert parse_fault("raise") == ("raise", "")
        assert parse_fault("raise:boom") == ("raise", "boom")
        assert parse_fault("sleep:0.5") == ("sleep", "0.5")
        assert parse_fault("hang:2") == ("hang", "2")
        assert parse_fault("exit:3") == ("exit", "3")
        assert parse_fault("corrupt-journal") == ("corrupt-journal", "")

    @pytest.mark.parametrize(
        "bad",
        [
            "explode",  # unknown kind
            "sleep:soon",  # non-numeric seconds
            "sleep:-1",  # negative seconds
            "hang:later",
            "exit:ok",  # non-integer status
            "corrupt-journal:now",  # takes no argument
        ],
    )
    def test_bad_directives_are_spec_errors(self, bad):
        with pytest.raises(SpecificationError) as excinfo:
            parse_fault(bad)
        assert excinfo.value.code == "SPEC"

    def test_every_documented_kind_is_parseable(self):
        for kind in FAULT_KINDS:
            directive = {
                "sleep": "sleep:0",
                "hang": "hang:0",
                "exit": "exit:0",
            }.get(kind, kind)
            parse_fault(directive)


class TestInjectFault:
    def test_none_is_a_noop(self):
        inject_fault(None)

    def test_raise_carries_its_message(self):
        with pytest.raises(RuntimeError, match="kaboom"):
            inject_fault("raise:kaboom")
        with pytest.raises(RuntimeError, match="injected fault"):
            inject_fault("raise")

    def test_sleep_and_hang_stall_for_the_argument(self):
        started = time.monotonic()
        inject_fault("sleep:0.05")
        inject_fault("hang:0.05")
        assert time.monotonic() - started >= 0.1

    def test_corrupt_journal_appends_one_unreadable_line(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 1}\n')
        inject_fault("corrupt-journal", journal_path=path)
        records, dropped = load_jsonl_tolerant(path)
        assert len(records) == 1  # the real record survives
        assert dropped == 1  # the garbage is skipped, not fatal
        # The garbage terminates its own line: later appends stay clean.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 2}\n')
        records, dropped = load_jsonl_tolerant(path)
        assert len(records) == 2
        assert dropped == 1

    def test_corrupt_journal_without_scope_is_a_noop(self):
        inject_fault("corrupt-journal", journal_path=None)

    def test_unknown_directive_rejected_at_injection_too(self):
        with pytest.raises(SpecificationError):
            inject_fault("meltdown")


class TestFaultPlan:
    def test_parse_plain_directive_targets_first_unit(self):
        plan = FaultPlan.parse("raise:x")
        assert (plan.target, plan.count) == (1, 1)
        assert plan.fault_for(1) == "raise:x"
        assert plan.fault_for(2) is None

    def test_parse_target_and_count(self):
        plan = FaultPlan.parse("exit:1@3x2")
        assert plan.fault_for(2) is None
        assert plan.fault_for(3) == "exit:1"
        assert plan.fault_for(4) == "exit:1"
        assert plan.fault_for(5) is None

    def test_spec_round_trips(self):
        for spec in ("raise@1", "hang:5@2", "exit:1@3x2"):
            assert FaultPlan.parse(spec).spec() == spec

    @pytest.mark.parametrize(
        "bad", ["raise@zero", "raise@1xmany", "explode@1"]
    )
    def test_bad_plans_are_spec_errors(self, bad):
        with pytest.raises(SpecificationError):
            FaultPlan.parse(bad)

    def test_targets_below_one_rejected(self):
        with pytest.raises(SpecificationError):
            FaultPlan(directive="raise", target=0)
        with pytest.raises(SpecificationError):
            FaultPlan(directive="raise", count=0)
