"""Property tests for bound-based pruning (ISSUE satellite).

Two properties over the paper system and a population of random
systems:

* **parity** — a pruned sweep finds the same best area as the
  exhaustive serial sweep (the bound is admissible, so skipping can
  never lose the optimum);
* **admissibility** — no evaluated candidate achieves an area below
  its precomputed lower bound.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import area_lower_bound
from repro.api import Problem
from repro.core.periods import enumerate_period_assignments
from repro.ir.process import Block, Process, SystemSpec
from repro.parallel import STATUS_OK, ExplorationEngine
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import (
    paper_assignment,
    paper_periods,
    paper_system,
    random_dfg,
)

RANDOM_SYSTEM_COUNT = 10
MAX_CANDIDATES = 12


def random_problem(seed):
    """A small random multi-process system with all types global."""
    library = default_library()
    system = SystemSpec(name=f"rand{seed}")
    for index in range(2):
        graph = random_dfg(5, seed=seed * 100 + index)
        deadline = graph.critical_path_length(library.latency_of) + 4
        process = Process(name=f"p{index}")
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment.all_global(library, system)
    periods = enumerate_period_assignments(system, assignment)[0]
    return Problem(
        system=system, library=library, assignment=assignment, periods=periods
    )


def check_pruning_parity(problem, candidates):
    exhaustive = ExplorationEngine(problem, workers=1, prune=False).sweep(
        candidates
    )
    pruned = ExplorationEngine(problem, workers=1, prune=True).sweep(
        candidates
    )
    assert exhaustive.best_area is not None
    assert pruned.best_area == exhaustive.best_area
    assert pruned.evaluated + pruned.pruned == len(candidates)
    # Admissibility: no schedule beats its precomputed lower bound.
    for record in exhaustive.results:
        assert record.status == STATUS_OK
        assert record.bound <= record.area + 1e-9, (
            record.periods,
            record.bound,
            record.area,
        )
    return pruned


@pytest.mark.parametrize("seed", range(1, RANDOM_SYSTEM_COUNT + 1))
def test_pruned_best_matches_exhaustive_random(seed):
    problem = random_problem(seed)
    candidates = enumerate_period_assignments(
        problem.system, problem.assignment
    )[:MAX_CANDIDATES]
    assert len(candidates) >= 2
    check_pruning_parity(problem, candidates)


def test_pruned_best_matches_exhaustive_paper_system():
    system, library = paper_system()
    assignment = paper_assignment(library)
    problem = Problem(
        system=system,
        library=library,
        assignment=assignment,
        periods=paper_periods(),
    )
    candidates = enumerate_period_assignments(system, assignment)
    # The paper system's full space is ~70 candidates at about a second
    # of scheduling each; an evenly spaced subsample keeps the property
    # meaningful (it includes the cheapest and most expensive bounds)
    # at test-suite cost.
    subsample = candidates[:: max(1, len(candidates) // 5)]
    assert len(subsample) >= 3
    pruned = check_pruning_parity(problem, subsample)
    assert pruned.best_area is not None


def test_bounds_never_exceed_achieved_area_paper_periods():
    """The paper's own period choice respects its lower bound."""
    system, library = paper_system()
    assignment = paper_assignment(library)
    periods = paper_periods()
    problem = Problem(
        system=system, library=library, assignment=assignment, periods=periods
    )
    bound = area_lower_bound(system, library, assignment, periods)
    result = problem.schedule()
    assert bound <= result.total_area() + 1e-9
