"""Crash-safe sweep checkpointing: journal mechanics and kill/resume.

Acceptance criteria of the robustness PR: a sweep killed mid-run and
resumed from its journal reaches the identical best area and periods,
evaluates each candidate exactly once across both runs, and the journal
holds no duplicate candidate keys.
"""

import json

import pytest

from repro.parallel import (
    CandidateResult,
    ExplorationEngine,
    SweepJournal,
    load_jsonl_tolerant,
)
from repro.parallel.checkpoint import CheckpointError, candidate_key


def _record(periods, status="ok", area=6.0, order=0):
    return CandidateResult(
        order=order, periods=periods, bound=1.0, status=status, area=area
    )


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with SweepJournal(path) as journal:
            journal.append(_record({"multiplier": 4}))
        records = SweepJournal(path).load()
        assert list(records) == [candidate_key({"multiplier": 4})]
        entry = records[candidate_key({"multiplier": 4})]
        assert entry["area"] == 6.0

    def test_load_missing_file_is_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").load() == {}

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with SweepJournal(path) as journal:
            journal.append(_record({"multiplier": 4}))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "periods": {"multi')  # killed mid-write
        records = SweepJournal(path).load()
        assert len(records) == 1  # the valid record survives

    def test_malformed_records_are_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        lines = [
            json.dumps({"version": 1, "periods": {"a": 2}, "status": "ok"}),
            json.dumps({"version": 99, "periods": {"b": 2}, "status": "ok"}),
            json.dumps({"version": 1, "status": "ok"}),  # no periods
            json.dumps({"version": 1, "periods": {"c": 2}}),  # no status
            "not json at all",
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        records = SweepJournal(path).load()
        assert list(records) == [candidate_key({"a": 2})]

    def test_duplicate_keys_keep_first(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with SweepJournal(path) as journal:
            journal.append(_record({"a": 2}, area=5.0))
            journal.append(_record({"a": 2}, area=9.0))
        records = SweepJournal(path).load()
        assert records[candidate_key({"a": 2})]["area"] == 5.0

    def test_best_area_ignores_failures(self):
        records = {
            ("a",): {"status": "ok", "area": 8.0},
            ("b",): {"status": "failed", "area": None},
            ("c",): {"status": "ok", "area": 6.0},
            ("d",): {"status": "pruned", "area": None},
        }
        assert SweepJournal.best_area(records) == 6.0
        assert SweepJournal.best_area({}) is None

    def test_unwritable_path_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            SweepJournal(tmp_path / "no" / "such" / "dir" / "x.jsonl").append(
                _record({"a": 2})
            )


class TestByteRobustLoading:
    """A crash may tear the journal at *any byte*, not just line ends."""

    #: Two records; the second's error text carries multi-byte UTF-8, so
    #: some truncation offsets land mid-character.
    RECORDS = [
        {"version": 1, "periods": {"a": 2}, "status": "ok", "area": 5.0},
        {
            "version": 1,
            "periods": {"b": 4},
            "status": "failed",
            "error": "took 12 µs too long — timed out",
        },
    ]

    def _journal_bytes(self) -> bytes:
        return b"".join(
            json.dumps(record).encode("utf-8") + b"\n"
            for record in self.RECORDS
        )

    def test_truncation_at_every_byte_offset(self, tmp_path):
        data = self._journal_bytes()
        first_line_end = data.index(b"\n") + 1
        path = tmp_path / "torn.jsonl"
        for offset in range(len(data) + 1):
            path.write_bytes(data[:offset])
            records, dropped = load_jsonl_tolerant(str(path))
            # Whatever the tear, intact records load and nothing raises.
            # A record is readable once its full JSON text is on disk —
            # the trailing newline itself is optional.
            if offset >= len(data) - 1:
                expected = self.RECORDS
            elif offset >= first_line_end - 1:
                expected = [self.RECORDS[0]]
            else:
                expected = []
            assert records == expected, f"offset {offset}"
            assert dropped <= 1  # at most the single torn record

    def test_torn_first_record_loads_as_empty(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_bytes(self._journal_bytes()[:10])
        records = SweepJournal(path).load()
        assert records == {}

    def test_garbage_between_records_is_skipped(self, tmp_path):
        data = self._journal_bytes()
        first_line_end = data.index(b"\n") + 1
        path = tmp_path / "mixed.jsonl"
        path.write_bytes(
            data[:first_line_end]
            + b"\x00\xfe\xff not utf8 \x80\n"
            + data[first_line_end:]
        )
        records, dropped = load_jsonl_tolerant(str(path))
        assert records == self.RECORDS
        assert dropped == 1

    def test_missing_file_propagates_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_jsonl_tolerant(str(tmp_path / "absent.jsonl"))


class _Kill(Exception):
    pass


class TestKillResume:
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, small_problem, small_candidates
    ):
        baseline = ExplorationEngine(small_problem).sweep(small_candidates)

        path = tmp_path / "ck.jsonl"
        seen = []

        def killer(record):
            seen.append(record)
            if len(seen) == 3:
                raise _Kill()

        engine = ExplorationEngine(small_problem, checkpoint=path)
        with pytest.raises(_Kill):
            engine.sweep(small_candidates, on_result=killer)

        journaled = SweepJournal(path).load()
        assert len(journaled) == 3  # every surfaced result hit disk first

        resumed = ExplorationEngine(small_problem, checkpoint=path).sweep(
            small_candidates
        )
        assert resumed.best is not None
        assert resumed.best.area == baseline.best.area
        assert resumed.best.periods == baseline.best.periods
        assert resumed.telemetry["candidates_restored"] == 3
        # Exactly-once across both runs: the second run re-evaluated only
        # what the first never journaled.
        fresh = [r for r in resumed.results if not r.restored]
        assert len(fresh) == len(small_candidates) - 3

    def test_journal_has_no_duplicate_keys_after_resume(
        self, tmp_path, small_problem, small_candidates
    ):
        path = tmp_path / "ck.jsonl"
        seen = []

        def killer(record):
            seen.append(record)
            if len(seen) == 2:
                raise _Kill()

        with pytest.raises(_Kill):
            ExplorationEngine(small_problem, checkpoint=path).sweep(
                small_candidates, on_result=killer
            )
        ExplorationEngine(small_problem, checkpoint=path).sweep(
            small_candidates
        )

        keys = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                keys.append(candidate_key(json.loads(line)["periods"]))
        assert len(keys) == len(small_candidates)
        assert len(set(keys)) == len(keys)

    def test_completed_journal_restores_everything(
        self, tmp_path, small_problem, small_candidates
    ):
        path = tmp_path / "ck.jsonl"
        first = ExplorationEngine(small_problem, checkpoint=path).sweep(
            small_candidates
        )
        second = ExplorationEngine(small_problem, checkpoint=path).sweep(
            small_candidates
        )
        assert second.telemetry["candidates_restored"] == len(
            small_candidates
        )
        assert all(record.restored for record in second.results)
        assert second.best.area == first.best.area
        assert second.best.periods == first.best.periods
