"""RetryPolicy math and its integration with the exploration engine."""

from __future__ import annotations

import pytest

from repro.parallel import (
    DEFAULT_RETRY_POLICY,
    ExplorationEngine,
    RetryPolicy,
    SweepInterrupted,
    SweepJournal,
)


class TestPolicyMath:
    def test_default_policy_shape(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.retries == 2
        assert list(DEFAULT_RETRY_POLICY.delays()) == [0.0, 0.1, 0.2]

    def test_first_attempt_never_waits(self):
        assert RetryPolicy(max_attempts=5).delay_for(1) == 0.0

    def test_delays_grow_geometrically_and_clamp(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=3.0, max_delay=10.0
        )
        assert list(policy.delays()) == [0.0, 1.0, 3.0, 9.0, 10.0, 10.0]
        assert policy.total_delay() == 33.0

    def test_allows_is_the_attempt_window(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.allows(1)
        assert policy.allows(2)
        assert not policy.allows(3)
        assert not policy.allows(0)

    def test_delay_outside_the_window_is_a_caller_bug(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(ValueError):
            policy.delay_for(0)
        with pytest.raises(ValueError):
            policy.delay_for(3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"base_delay": 5.0, "max_delay": 1.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_never_retry_policy(self):
        policy = RetryPolicy(max_attempts=1)
        assert policy.retries == 0
        assert list(policy.delays()) == [0.0]


class TestEngineIntegration:
    def test_policy_overrides_engine_retries(self, small_problem):
        policy = RetryPolicy(max_attempts=4, base_delay=0.0)
        engine = ExplorationEngine(
            small_problem, retries=9, retry_policy=policy
        )
        assert engine.retries == 3

    def test_failed_candidate_exhausts_the_policy(
        self, small_problem, small_candidates
    ):
        target = dict(small_candidates[0].as_dict)
        policy = RetryPolicy(max_attempts=3, base_delay=0.001)
        engine = ExplorationEngine(
            small_problem,
            retry_policy=policy,
            prune=False,
            fault_for=lambda periods: (
                "raise:flaky" if periods == target else None
            ),
        )
        outcome = engine.sweep(small_candidates)
        failed = [r for r in outcome.results if r.status == "failed"]
        assert len(failed) == 1
        assert failed[0].attempts == policy.max_attempts


class TestStopWhen:
    def test_stop_before_first_candidate_journals_nothing(
        self, tmp_path, small_problem, small_candidates
    ):
        path = tmp_path / "ck.jsonl"
        engine = ExplorationEngine(
            small_problem, checkpoint=path, stop_when=lambda: True
        )
        with pytest.raises(SweepInterrupted):
            engine.sweep(small_candidates)
        assert SweepJournal(path).load() == {}

    def test_stop_fires_at_the_candidate_boundary(
        self, tmp_path, small_problem, small_candidates
    ):
        """An abandoned sweep stops before evaluating (or journaling)
        its next candidate — the service's timed-out attempts rely on
        this to never race a successor on the shared journal."""
        path = tmp_path / "ck.jsonl"
        seen = []
        engine = ExplorationEngine(
            small_problem,
            checkpoint=path,
            prune=False,
            stop_when=lambda: len(seen) >= 2,
        )
        with pytest.raises(SweepInterrupted):
            engine.sweep(small_candidates, on_result=seen.append)
        assert len(seen) == 2
        assert len(SweepJournal(path).load()) == 2
        # Resuming without the stop probe completes the rest once each.
        resumed = ExplorationEngine(
            small_problem, checkpoint=path, prune=False
        ).sweep(small_candidates)
        assert resumed.telemetry["candidates_restored"] == 2
        fresh = [r for r in resumed.results if not r.restored]
        assert len(fresh) == len(small_candidates) - 2
