"""Tests for the parallel exploration engine (docs/parallel.md).

Covers the tentpole guarantees: ``workers=1`` reproduces the plain
serial sweep exactly, ``workers>1`` reproduces its best result, faults
and timeouts become failed-candidate records without losing or
duplicating candidates, and per-worker telemetry merges into one
profile-compatible summary.
"""

from __future__ import annotations

import pytest

from repro.analysis.compare import compare_scopes
from repro.core.scheduler import ModuloSystemScheduler
from repro.obs import Tracer
from repro.parallel import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PRUNED,
    ExplorationEngine,
    ExplorationError,
    SweepJob,
    run_job,
)
from repro.scheduling.forces import area_weights


def plain_sweep(problem, candidates):
    """The pre-engine serial sweep: one scheduler, candidates in order."""
    scheduler = ModuloSystemScheduler(
        problem.library, weights=area_weights(problem.library)
    )
    results = []
    for periods in candidates:
        result = scheduler.schedule(problem.system, problem.assignment, periods)
        results.append((periods.as_dict, result.total_area()))
    return results


class TestSerialPath:
    def test_workers1_matches_plain_sweep(self, small_problem, small_candidates):
        expected = plain_sweep(small_problem, small_candidates)
        engine = ExplorationEngine(small_problem, workers=1, prune=False)
        outcome = engine.sweep(small_candidates)
        assert [
            (record.periods, record.area) for record in outcome.results
        ] == expected
        best_area = min(area for _, area in expected)
        assert outcome.best_area == best_area

    def test_best_tiebreak_is_lexicographic(self, small_problem, small_candidates):
        engine = ExplorationEngine(small_problem, workers=1, prune=False)
        outcome = engine.sweep(small_candidates)
        ties = [
            record
            for record in outcome.results
            if record.status == STATUS_OK and record.area == outcome.best_area
        ]
        assert outcome.best.lexkey == min(record.lexkey for record in ties)

    def test_pruning_preserves_best_area(self, small_problem, small_candidates):
        exhaustive = ExplorationEngine(
            small_problem, workers=1, prune=False
        ).sweep(small_candidates)
        pruned = ExplorationEngine(small_problem, workers=1, prune=True).sweep(
            small_candidates
        )
        assert pruned.best_area == exhaustive.best_area
        assert pruned.evaluated + pruned.pruned == len(small_candidates)
        # Every candidate appears exactly once, in the original order.
        assert [r.order for r in pruned.results] == list(
            range(len(small_candidates))
        )

    def test_on_result_called_once_per_candidate(
        self, small_problem, small_candidates
    ):
        seen = []
        engine = ExplorationEngine(small_problem, workers=1)
        engine.sweep(small_candidates, on_result=seen.append)
        assert sorted(record.order for record in seen) == list(
            range(len(small_candidates))
        )

    def test_workers_must_be_positive(self, small_problem):
        with pytest.raises(ExplorationError):
            ExplorationEngine(small_problem, workers=0)


class TestParallelPath:
    def test_parallel_matches_serial(self, small_problem, small_candidates):
        serial = ExplorationEngine(
            small_problem, workers=1, prune=False
        ).sweep(small_candidates)
        parallel = ExplorationEngine(
            small_problem, workers=2, prune=False
        ).sweep(small_candidates)
        assert parallel.best_area == serial.best_area
        assert parallel.best_periods == serial.best_periods
        assert [
            (record.periods, record.area) for record in parallel.results
        ] == [(record.periods, record.area) for record in serial.results]

    def test_parallel_telemetry_merges_workers(
        self, small_problem, small_candidates
    ):
        tracer = Tracer()
        engine = ExplorationEngine(
            small_problem, workers=2, prune=False, tracer=tracer
        )
        outcome = engine.sweep(small_candidates)
        telemetry = outcome.telemetry
        assert telemetry["workers"] == 2
        assert telemetry["candidates_total"] == len(small_candidates)
        assert telemetry["candidates_evaluated"] == len(small_candidates)
        assert telemetry["counters"]["force_evaluations"] > 0
        assert telemetry["runs"] == len(small_candidates)
        assert telemetry["worker_summaries"]
        assert sum(
            summary["jobs"] for summary in telemetry["worker_summaries"].values()
        ) == len(small_candidates)
        # Merged worker counters land in the parent tracer too.
        assert tracer.counters.as_dict()["force_evaluations"] > 0

    def test_chunked_dispatch_same_results(
        self, small_problem, small_candidates
    ):
        serial = ExplorationEngine(
            small_problem, workers=1, prune=False
        ).sweep(small_candidates)
        chunked = ExplorationEngine(
            small_problem, workers=2, prune=False, chunk_size=3
        ).sweep(small_candidates)
        assert chunked.best_area == serial.best_area
        assert chunked.evaluated == len(small_candidates)


class TestFaultHandling:
    """Satellite: worker faults become failed records, nothing is lost."""

    def _fault_for(self, target, directive):
        def fault(periods):
            return directive if periods == target else None

        return fault

    def test_raising_candidate_serial(self, small_problem, small_candidates):
        target = small_candidates[0].as_dict
        engine = ExplorationEngine(
            small_problem,
            workers=1,
            prune=False,
            fault_for=self._fault_for(target, "raise:boom"),
        )
        outcome = engine.sweep(small_candidates)
        failed = [r for r in outcome.results if r.status == STATUS_FAILED]
        assert len(failed) == 1
        assert failed[0].periods == target
        assert "boom" in failed[0].error
        assert failed[0].attempts == 2  # one retry before giving up
        assert outcome.evaluated == len(small_candidates) - 1
        assert [r.order for r in outcome.results] == list(
            range(len(small_candidates))
        )

    def test_raising_candidate_parallel(self, small_problem, small_candidates):
        target = small_candidates[-1].as_dict
        engine = ExplorationEngine(
            small_problem,
            workers=2,
            prune=False,
            fault_for=self._fault_for(target, "raise:boom"),
        )
        outcome = engine.sweep(small_candidates)
        failed = [r for r in outcome.results if r.status == STATUS_FAILED]
        assert len(failed) == 1
        assert failed[0].periods == target
        assert failed[0].attempts == 2
        # No candidate lost or duplicated despite the retry.
        assert [r.order for r in outcome.results] == list(
            range(len(small_candidates))
        )
        assert outcome.best_area is not None

    def test_timeout_candidate_serial(self, small_problem, small_candidates):
        target = small_candidates[0].as_dict
        engine = ExplorationEngine(
            small_problem,
            workers=1,
            prune=False,
            timeout=0.2,
            fault_for=self._fault_for(target, "sleep:5"),
        )
        outcome = engine.sweep(small_candidates)
        failed = [r for r in outcome.results if r.status == STATUS_FAILED]
        assert len(failed) == 1
        assert "timed out" in failed[0].error
        assert failed[0].attempts == 2
        assert outcome.evaluated == len(small_candidates) - 1

    def test_timeout_candidate_worker(self, small_problem):
        """The per-job deadline also fires inside a worker process."""
        from repro.api import dumps_problem

        job = SweepJob(
            job_id=0,
            problem_text=dumps_problem(small_problem),
            periods=tuple(small_problem.periods.as_dict.items()),
            timeout=0.2,
            fault="sleep:5",
        )
        result = run_job(job)
        assert not result.ok
        assert "timed out" in result.error


class TestCompare:
    def test_engine_compare_matches_compare_scopes(self, small_problem):
        comparison = compare_scopes(
            small_problem.system,
            small_problem.library,
            small_problem.assignment,
            small_problem.periods,
            weights=area_weights(small_problem.library),
        )
        outcome = ExplorationEngine(small_problem, workers=1).compare()
        assert outcome.global_result.area == comparison.global_area
        assert outcome.local_result.area == comparison.local_area
        assert (
            outcome.global_result.instance_counts
            == comparison.global_result.instance_counts()
        )

    def test_engine_compare_parallel(self, small_problem):
        serial = ExplorationEngine(small_problem, workers=1).compare()
        parallel = ExplorationEngine(small_problem, workers=2).compare()
        assert parallel.global_result.area == serial.global_result.area
        assert parallel.local_result.area == serial.local_result.area

    def test_compare_failure_raises(self, small_problem):
        engine = ExplorationEngine(
            small_problem,
            workers=1,
            retries=0,
            fault_for=lambda periods: "raise:broken" if periods else None,
        )
        with pytest.raises(ExplorationError):
            engine.compare()


class TestJobProtocol:
    def test_job_roundtrip_matches_inline(self, small_problem, small_candidates):
        from repro.api import dumps_problem

        periods = small_candidates[0]
        scheduler = ModuloSystemScheduler(
            small_problem.library,
            weights=area_weights(small_problem.library),
        )
        direct = scheduler.schedule(
            small_problem.system, small_problem.assignment, periods
        )
        job = SweepJob(
            job_id=7,
            problem_text=dumps_problem(small_problem),
            periods=tuple(periods.as_dict.items()),
        )
        result = run_job(job)
        assert result.ok
        assert result.area == direct.total_area()
        assert result.iterations == direct.iterations
        assert result.instance_counts == direct.instance_counts()

    def test_pruned_statuses_have_no_area(self, small_problem, small_candidates):
        outcome = ExplorationEngine(
            small_problem, workers=1, prune=True
        ).sweep(small_candidates)
        for record in outcome.results:
            if record.status == STATUS_PRUNED:
                assert record.area is None
            elif record.status == STATUS_OK:
                assert record.area is not None
