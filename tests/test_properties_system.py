"""System-level property tests: exhaustive safety, offsets, behavior fuzz."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import exhaustive_interleaving_check
from repro.core.offsets import optimize_offsets
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.behavior import parse_behavior
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import random_dfg

LIBRARY = default_library()


def _tiny_system(sizes, slack, seed):
    system = SystemSpec(name="tiny")
    for index, n_ops in enumerate(sizes):
        graph = random_dfg(n_ops, seed=seed + index)
        deadline = graph.critical_path_length(LIBRARY.latency_of) + slack
        process = Process(name=f"p{index}")
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    return system


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n1=st.integers(min_value=1, max_value=5),
    n2=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=100),
    slack=st.integers(min_value=1, max_value=3),
    period=st.integers(min_value=1, max_value=3),
)
def test_exhaustive_safety_on_random_tiny_systems(n1, n2, seed, slack, period):
    """Every reachable interleaving of a scheduled random system stays
    within the derived pools — enumerated, not sampled."""
    system = _tiny_system([n1, n2], slack, seed)
    assignment = ResourceAssignment.all_global(LIBRARY, system)
    if not assignment.global_types:
        return
    periods = PeriodAssignment({t: period for t in assignment.global_types})
    result = ModuloSystemScheduler(LIBRARY).schedule(system, assignment, periods)
    report = exhaustive_interleaving_check(result, max_combinations=100_000)
    assert report.ok, report.violation


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n1=st.integers(min_value=1, max_value=5),
    n2=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=100),
    period=st.integers(min_value=2, max_value=4),
)
def test_offsets_never_hurt_and_stay_safe(n1, n2, seed, period):
    system = _tiny_system([n1, n2], slack=3, seed=seed)
    assignment = ResourceAssignment.all_global(LIBRARY, system)
    if not assignment.global_types:
        return
    periods = PeriodAssignment({t: period for t in assignment.global_types})
    result = ModuloSystemScheduler(LIBRARY).schedule(system, assignment, periods)
    before = result.total_area()
    outcome = optimize_offsets(result, exhaustive_limit=500)
    assert outcome.area_after <= before
    assert result.total_area() == outcome.area_after
    report = exhaustive_interleaving_check(result, max_combinations=100_000)
    assert report.ok, report.violation


# ---------------------------------------------------------------------------
# Behavior front-end fuzz: generated expressions always parse to valid DAGs
# ---------------------------------------------------------------------------
@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["a", "b", "c", "x", "7", "42"]))
        return leaf
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@settings(max_examples=60)
@given(exprs=st.lists(expressions(), min_size=1, max_size=4))
def test_behavior_fuzz_parses_or_rejects_cleanly(exprs):
    text = "\n".join(f"t{i} = {expr}" for i, expr in enumerate(exprs))
    try:
        graph = parse_behavior(text)
    except Exception as exc:  # noqa: BLE001
        # The only legitimate rejection is a statement computing nothing
        # (pure identifier/constant leaves).
        assert "computes nothing" in str(exc)
        return
    graph.validate()
    for op in graph:
        assert op.kind in (OpKind.ADD, OpKind.SUB, OpKind.MUL)
    # Targets of earlier statements may feed later ones; no cycles ever.
    graph.topological_order()
