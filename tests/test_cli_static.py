"""CLI tests for the static-analysis commands: certify, lint, and the
JSON output formats."""

import json

import pytest

from repro.cli import main

TEXT = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
global multiplier p1 p2
period multiplier 4
"""

BROKEN = """\
system broken
process p1
block p1 main deadline=1
op p1 main a1 add
op p1 main a2 add
op p1 main a3 add
edge p1 main a1 a2
edge p1 main a2 a3
"""


@pytest.fixture
def sys_file(tmp_path):
    path = tmp_path / "demo.sys"
    path.write_text(TEXT, encoding="utf-8")
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.sys"
    path.write_text(BROKEN, encoding="utf-8")
    return str(path)


class TestCertifyCommand:
    def test_safe_system_exits_zero(self, sys_file, capsys):
        assert main(["certify", sys_file]) == 0
        out = capsys.readouterr().out
        assert "certificate for 'demo'" in out
        assert "safe" in out

    def test_recheck_passes(self, sys_file, capsys):
        assert main(["certify", sys_file, "--recheck"]) == 0
        assert "independently re-verified" in capsys.readouterr().out

    def test_seeded_conflict_exits_one_with_counterexample(
        self, sys_file, capsys
    ):
        code = main(["certify", sys_file, "--pool", "multiplier=0"])
        assert code == 1
        out = capsys.readouterr().out
        assert "unsafe" in out
        assert "(type 'multiplier', slot " in out
        assert "exceeds pool 0" in out

    def test_json_format_round_trips(self, sys_file, capsys):
        assert main(["certify", sys_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "repro-certificate"
        assert data["verdict"] == "safe"
        assert data["types"][0]["type"] == "multiplier"

    def test_output_file_round_trips(self, sys_file, tmp_path, capsys):
        from repro.analysis.static import Certificate

        out_path = str(tmp_path / "cert.json")
        assert main(["certify", sys_file, "-o", out_path]) == 0
        cert = Certificate.load(out_path)
        assert cert.system == "demo"
        assert cert.safe

    def test_any_offset_model(self, sys_file, capsys):
        code = main(["certify", sys_file, "--offset-model", "any"])
        out = capsys.readouterr().out
        assert "any-offset" in out
        assert code in (0, 1)

    def test_malformed_pool_argument(self, sys_file, capsys):
        assert main(["certify", sys_file, "--pool", "nonsense"]) == 2
        assert "TYPE=N" in capsys.readouterr().err


class TestLintCommand:
    def test_clean_file_exits_zero(self, sys_file, capsys):
        assert main(["lint", sys_file]) == 0
        assert "lint" in capsys.readouterr().out

    def test_defective_file_reports_errors(self, broken_file, capsys):
        assert main(["lint", broken_file]) == 2
        out = capsys.readouterr().out
        assert "TIME001" in out or "LINT001" in out

    def test_directory_expansion(self, sys_file, tmp_path, capsys):
        assert main(["lint", str(tmp_path)]) == 0
        assert "demo.sys" in capsys.readouterr().out

    def test_json_format(self, sys_file, capsys):
        assert main(["lint", sys_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["exit_code"] == 0
        assert "counts" in data

    def test_json_format_many_files(self, sys_file, broken_file, capsys):
        assert main(["lint", sys_file, broken_file, "--format", "json"]) == 2
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and len(data) == 2

    def test_rule_selection(self, sys_file, capsys):
        assert main(["lint", sys_file, "--rule", "redundant-edges"]) == 0
        out = capsys.readouterr().out
        assert "LINT203" not in out

    def test_unknown_rule_rejected(self, sys_file, capsys):
        assert main(["lint", sys_file, "--rule", "no-such-rule"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_no_sys_files(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["lint", str(empty)]) == 2
        assert "no .sys files" in capsys.readouterr().err


class TestCheckJson:
    def test_check_json_format(self, sys_file, capsys):
        assert main(["check", sys_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"] == {"errors": 0, "warnings": 0, "notes": 0}

    def test_check_json_reports_findings(self, broken_file, capsys):
        assert main(["check", broken_file, "--format", "json"]) == 2
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["errors"] >= 1
        assert data["diagnostics"][0]["code"]


class TestSweepCertify:
    def test_sweep_certify_safe(self, sys_file, capsys):
        code = main(["sweep", sys_file, "--limit", "8", "--certify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certificate" in out
        assert "safe" in out
