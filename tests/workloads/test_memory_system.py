"""Tests for the shared-memory workload."""

import pytest

from repro.ir.operation import OpKind
from repro.workloads.memory_system import (
    compute_process,
    dma_process,
    memory_library,
    shared_memory_system,
)


class TestMemoryLibrary:
    def test_memport_is_multicycle_nonpipelined(self):
        library = memory_library()
        port = library.type("memport")
        assert port.latency == 2
        assert not port.pipelined
        assert port.occupancy == 2
        assert port.executes(OpKind.LOAD)
        assert port.executes(OpKind.STORE)


class TestProcesses:
    def test_dma_structure(self):
        process = dma_process("d", words=3)
        graph = process.blocks[0].graph
        counts = graph.count_by_kind()
        assert counts[OpKind.LOAD] == 3
        assert counts[OpKind.STORE] == 3
        assert ("ld0", "st0") in graph.edges

    def test_compute_structure(self):
        process = compute_process("c")
        graph = process.blocks[0].graph
        counts = graph.count_by_kind()
        assert counts[OpKind.LOAD] == 2
        assert counts[OpKind.STORE] == 1
        assert counts[OpKind.MUL] == 1
        assert counts[OpKind.ADD] == 1

    def test_compute_critical_path(self):
        library = memory_library()
        process = compute_process("c")
        # load(2) -> mul(2) -> add(1) -> store(2) = 7.
        assert process.blocks[0].graph.critical_path_length(
            library.latency_of
        ) == 7


class TestSharedMemorySystem:
    def test_system_shape(self):
        system, library = shared_memory_system(movers=3, deadline=14)
        assert system.process_names == ["dma0", "dma1", "dma2", "calc"]
        system.validate(library.latency_of)

    def test_infeasible_deadline_rejected(self):
        with pytest.raises(Exception, match="C1"):
            shared_memory_system(deadline=3)
