"""Tests for the generated scenario corpus (repro.workloads.corpus)."""

import pytest

from repro.errors import GraphError
from repro.ir.operation import OpKind
from repro.workloads import (
    CORPUS_FAMILIES,
    corpus_library,
    corpus_system,
    filter_bank,
    io_kernel,
    ode_chain,
)


class TestGraphBuilders:
    def test_filter_bank_shape(self):
        graph = filter_bank(4)
        kinds = [graph.operation(oid).kind for oid in graph.op_ids]
        assert kinds.count(OpKind.MUL) == 4
        # A balanced reduction of n taps needs n - 1 adders.
        assert kinds.count(OpKind.ADD) == 3
        graph.validate()

    def test_filter_bank_heavy_override(self):
        graph = filter_bank(5, heavy=OpKind.SHL)
        kinds = [graph.operation(oid).kind for oid in graph.op_ids]
        assert kinds.count(OpKind.SHL) == 5
        assert OpKind.MUL not in kinds

    def test_filter_bank_rejects_single_tap(self):
        with pytest.raises(GraphError):
            filter_bank(1)

    def test_ode_chain_shape(self):
        stages = 3
        graph = ode_chain(stages)
        kinds = [graph.operation(oid).kind for oid in graph.op_ids]
        assert kinds.count(OpKind.DIV) == stages
        assert kinds.count(OpKind.SUB) == stages  # one error tap per stage
        # The state chain serializes: critical path grows with stages.
        unit = lambda op: 1  # noqa: E731
        assert graph.critical_path_length(unit) >= stages + 1

    def test_ode_chain_rejects_zero_stages(self):
        with pytest.raises(GraphError):
            ode_chain(0)

    def test_io_kernel_memport_uses_both_port_kinds(self):
        graph = io_kernel(3)
        kinds = [graph.operation(oid).kind for oid in graph.op_ids]
        assert kinds.count(OpKind.LOAD) == 3
        assert kinds.count(OpKind.STORE) == 3

    def test_io_kernel_mover_uses_one_kind_both_directions(self):
        graph = io_kernel(3, heavy=OpKind.MOV)
        kinds = [graph.operation(oid).kind for oid in graph.op_ids]
        assert kinds.count(OpKind.MOV) == 6

    def test_io_kernel_transfers_are_chained(self):
        graph = io_kernel(3)
        assert "in0" in graph.predecessors("in1")
        assert "out1" in graph.predecessors("out2")


class TestCorpusSystem:
    def test_deterministic_generation(self):
        first = corpus_system(8, seed=3)
        second = corpus_system(8, seed=3)
        assert first.name == second.name
        assert [p.name for p in first.system.processes] == [
            p.name for p in second.system.processes
        ]
        for p_a, p_b in zip(first.system.processes, second.system.processes):
            assert [b.name for b in p_a.blocks] == [b.name for b in p_b.blocks]
            assert [b.deadline for b in p_a.blocks] == [
                b.deadline for b in p_b.blocks
            ]
            assert [len(b.graph) for b in p_a.blocks] == [
                len(b.graph) for b in p_b.blocks
            ]
        assert first.periods.as_dict == second.periods.as_dict

    def test_seed_changes_instance(self):
        base = corpus_system(8, seed=0)
        other = corpus_system(8, seed=1)
        sizes = lambda inst: [  # noqa: E731
            len(b.graph) for p in inst.system.processes for b in p.blocks
        ]
        assert sizes(base) != sizes(other)

    def test_processes_hold_distinct_heavy_types(self):
        instance = corpus_system(6, seed=0)
        heavy_kinds = set(kind for kind in OpKind) - {
            OpKind.ADD, OpKind.SUB
        }
        for process in instance.system.processes:
            block_types = []
            for block in process.blocks:
                kinds = {
                    block.graph.operation(oid).kind for oid in block.graph.op_ids
                } & heavy_kinds
                # STORE rides on the LOAD port: one shared type per block.
                kinds.discard(OpKind.STORE)
                assert len(kinds) == 1
                block_types.append(kinds.pop())
            assert len(set(block_types)) == len(block_types)

    def test_all_eleven_clusters_form_at_scale(self):
        instance = corpus_system(12, seed=0)
        assert set(instance.assignment.global_types) == {
            shared for _family, shared in CORPUS_FAMILIES
        }
        for type_name in instance.assignment.global_types:
            assert len(instance.assignment.group(type_name)) >= 2
            assert instance.periods.period(type_name) >= 1

    def test_glue_stays_local(self):
        instance = corpus_system(10, seed=0)
        assert "adder" not in instance.assignment.global_types
        assert "subtracter" not in instance.assignment.global_types

    def test_instance_validates_and_schedules(self):
        from repro.core.scheduler import ModuloSystemScheduler

        instance = corpus_system(4, seed=2)
        instance.library.covers(instance.system)
        instance.assignment.validate(instance.system)
        instance.system.validate(instance.library.latency_of)
        scheduler = ModuloSystemScheduler(instance.library)
        result = scheduler.schedule(
            instance.system, instance.assignment, instance.periods
        )
        assert result.total_area() > 0
        assert len(result.block_schedules) == sum(
            len(p.blocks) for p in instance.system.processes
        )

    def test_rejects_empty_system(self):
        with pytest.raises(GraphError):
            corpus_system(0)

    def test_library_covers_every_family_kind(self):
        library = corpus_library()
        instance = corpus_system(11, seed=0)
        library.covers(instance.system)
