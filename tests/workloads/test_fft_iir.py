"""Tests for the FFT and IIR workloads."""

import pytest

from repro.errors import GraphError
from repro.ir.operation import OpKind
from repro.resources.library import default_library
from repro.workloads import fft_butterfly_network, iir_biquad_cascade


@pytest.fixture
def library():
    return default_library()


class TestFft:
    def test_butterfly_count(self):
        # n-point FFT: (n/2) * log2(n) butterflies, 10 ops each.
        graph = fft_butterfly_network(8)
        assert len(graph) == 4 * 3 * 10

    def test_operation_mix(self):
        counts = fft_butterfly_network(4).count_by_kind()
        # 4 butterflies: 4 muls, 3 adds, 3 subs each.
        assert counts[OpKind.MUL] == 16
        assert counts[OpKind.ADD] == 12
        assert counts[OpKind.SUB] == 12

    def test_depth_grows_logarithmically(self, library):
        cp2 = fft_butterfly_network(2).critical_path_length(library.latency_of)
        cp8 = fft_butterfly_network(8).critical_path_length(library.latency_of)
        assert cp8 == 3 * cp2

    def test_valid_dag(self):
        fft_butterfly_network(16).validate()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(GraphError, match="power of two"):
            fft_butterfly_network(6)
        with pytest.raises(GraphError, match="power of two"):
            fft_butterfly_network(1)


class TestIir:
    def test_section_counts(self):
        counts = iir_biquad_cascade(3).count_by_kind()
        assert counts[OpKind.MUL] == 15
        assert counts[OpKind.ADD] == 6
        assert counts[OpKind.SUB] == 6

    def test_cascade_is_serial(self, library):
        cp1 = iir_biquad_cascade(1).critical_path_length(library.latency_of)
        cp3 = iir_biquad_cascade(3).critical_path_length(library.latency_of)
        assert cp3 > 2 * cp1

    def test_sections_linked_through_b0(self):
        graph = iir_biquad_cascade(2)
        assert "s1_b0" in graph.successors("s0_fb2")

    def test_valid_dag(self):
        iir_biquad_cascade(4).validate()

    def test_zero_sections_rejected(self):
        with pytest.raises(GraphError, match=">= 1"):
            iir_biquad_cascade(0)
