"""Tests for the mode-switching (conditional) workload."""

import pytest

from repro.errors import GraphError
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.workloads import mode_switching_filter
from repro.workloads.conditional import MODE


class TestModeSwitchingFilter:
    def test_structure(self):
        graph = mode_switching_filter(3)
        assert graph.conditions() == {MODE: ["fast", "precise"]}
        counts = graph.count_by_kind()
        # fast: 1 mul + 1 add; precise: 3 mul + 2 add; shared: 1 mul.
        assert counts[OpKind.MUL] == 5
        assert counts[OpKind.ADD] == 3

    def test_fast_and_precise_paths_exclusive(self):
        graph = mode_switching_filter(3)
        fast = graph.operation("f_mul")
        precise = graph.operation("p_mul0")
        assert fast.excludes(precise)

    def test_output_depends_on_both_paths(self):
        graph = mode_switching_filter(3)
        preds = graph.predecessors("scale")
        assert "f_add" in preds

    def test_minimum_taps(self):
        with pytest.raises(GraphError, match=">= 2"):
            mode_switching_filter(1)

    def test_exclusivity_reduces_multiplier_need(self):
        """Under a tight deadline the scheduler can overlap the two paths
        on shared multipliers."""
        library = default_library()
        graph = mode_switching_filter(3)
        cp = graph.critical_path_length(library.latency_of)
        block = Block(name="m", graph=mode_switching_filter(3), deadline=cp + 2)
        schedule = ImprovedForceDirectedScheduler(library).schedule(block)
        # Worst-case branch usage: never all 5 multiplications at once.
        assert schedule.peak_usage("multiplier") <= 3
