"""Tests for the paper's 5-process system construction."""

import pytest

from repro.ir.operation import OpKind
from repro.workloads import (
    DEADLINES,
    PERIOD,
    paper_assignment,
    paper_periods,
    paper_system,
)


class TestPaperSystem:
    def test_five_processes(self):
        system, library = paper_system()
        assert system.process_names == ["p1", "p2", "p3", "p4", "p5"]

    def test_deadlines(self):
        system, __ = paper_system()
        for name, deadline in DEADLINES.items():
            assert system.process(name).blocks[0].deadline == deadline

    def test_ewf_and_diffeq_blocks(self):
        system, __ = paper_system()
        assert system.process("p1").operation_count == 34
        assert system.process("p4").operation_count == 11

    def test_c1_feasible_under_library(self):
        system, library = paper_system()
        system.validate(library.latency_of)  # no exception

    def test_diffeq_has_no_comparator(self):
        system, __ = paper_system()
        kinds = system.process("p4").kinds_used()
        assert OpKind.CMP not in kinds
        assert OpKind.SUB in kinds

    def test_total_operation_count(self):
        system, __ = paper_system()
        assert system.operation_count == 3 * 34 + 2 * 11


class TestPaperAssignment:
    def test_scopes_match_section7(self):
        system, library = paper_system()
        assignment = paper_assignment(library)
        assert assignment.group("adder") == ["p1", "p2", "p3", "p4", "p5"]
        assert assignment.group("multiplier") == ["p1", "p2", "p3", "p4", "p5"]
        assert assignment.group("subtracter") == ["p4", "p5"]
        assignment.validate(system)


class TestPaperPeriods:
    def test_all_periods_fifteen(self):
        periods = paper_periods()
        assert periods.as_dict == {
            "adder": PERIOD,
            "multiplier": PERIOD,
            "subtracter": PERIOD,
        }

    def test_periods_validate_against_assignment(self):
        __, library = paper_system()
        paper_periods().validate(paper_assignment(library))


class TestSplitVariant:
    def test_split_system_shape(self):
        system, library = paper_system(split_ewf=True)
        for name in ("p1", "p2", "p3"):
            blocks = system.process(name).blocks
            assert [b.name for b in blocks] == ["front", "back"]
            assert sum(b.deadline for b in blocks) == DEADLINES[name]
        system.validate(library.latency_of)

    def test_split_system_schedules_globally(self):
        from repro.core import ModuloSystemScheduler
        from repro.core.verify import verify_system_schedule
        from repro.scheduling import area_weights

        system, library = paper_system(split_ewf=True)
        assignment = paper_assignment(library)
        # Half-deadline blocks shrink the period candidates: use 15's
        # divisor 5 so every block spans at least one period.
        from repro.core import PeriodAssignment

        result = ModuloSystemScheduler(
            library, weights=area_weights(library)
        ).schedule(
            system,
            assignment,
            PeriodAssignment({"adder": 5, "multiplier": 5, "subtracter": 5}),
        )
        report = verify_system_schedule(result)
        assert report.ok, str(report)
        # Sharing still beats the all-local baseline.
        from repro.resources import ResourceAssignment

        local = ModuloSystemScheduler(library).schedule(
            system, ResourceAssignment.all_local(library)
        )
        assert result.total_area() < local.total_area()
