"""Tests for the benchmark workloads."""

import pytest

from repro.errors import GraphError
from repro.ir.operation import OpKind
from repro.resources.library import default_library
from repro.workloads import (
    ar_lattice,
    differential_equation,
    elliptic_wave_filter,
    fir_filter,
    random_dfg,
)
from repro.workloads.diffeq import CRITICAL_PATH as DIFFEQ_CP
from repro.workloads.ewf import CRITICAL_PATH as EWF_CP


@pytest.fixture
def library():
    return default_library()


class TestEllipticWaveFilter:
    def test_published_operation_mix(self):
        graph = elliptic_wave_filter()
        counts = graph.count_by_kind()
        assert counts[OpKind.ADD] == 26
        assert counts[OpKind.MUL] == 8
        assert len(graph) == 34

    def test_published_critical_path(self, library):
        graph = elliptic_wave_filter()
        assert graph.critical_path_length(library.latency_of) == EWF_CP == 17

    def test_graph_is_valid_dag(self):
        elliptic_wave_filter().validate()

    def test_connected(self):
        graph = elliptic_wave_filter()
        isolated = [
            oid
            for oid in graph.op_ids
            if not graph.predecessors(oid) and not graph.successors(oid)
        ]
        assert isolated == []

    def test_fresh_instance_per_call(self):
        assert elliptic_wave_filter() is not elliptic_wave_filter()


class TestDifferentialEquation:
    def test_paper_operation_mix_with_substitution(self):
        counts = differential_equation().count_by_kind()
        assert counts[OpKind.MUL] == 6
        assert counts[OpKind.ADD] == 2
        assert counts[OpKind.SUB] == 3  # comparator substituted

    def test_original_mix_without_substitution(self):
        counts = differential_equation(substitute_compare=False).count_by_kind()
        assert counts[OpKind.SUB] == 2
        assert counts[OpKind.CMP] == 1

    def test_critical_path(self, library):
        graph = differential_equation()
        assert graph.critical_path_length(library.latency_of) == DIFFEQ_CP == 6

    def test_structure(self):
        graph = differential_equation()
        assert set(graph.predecessors("m3")) == {"m1", "m2"}
        assert graph.successors("s1") == ["s2"]
        assert graph.predecessors("a1") == []


class TestFirFilter:
    def test_tree_counts(self):
        graph = fir_filter(8, adder="tree")
        counts = graph.count_by_kind()
        assert counts[OpKind.MUL] == 8
        assert counts[OpKind.ADD] == 7

    def test_chain_counts(self):
        counts = fir_filter(5, adder="chain").count_by_kind()
        assert counts[OpKind.MUL] == 5
        assert counts[OpKind.ADD] == 4

    def test_tree_shorter_than_chain(self, library):
        tree = fir_filter(8, adder="tree")
        chain = fir_filter(8, adder="chain")
        assert tree.critical_path_length(library.latency_of) < (
            chain.critical_path_length(library.latency_of)
        )

    def test_odd_tap_count(self):
        graph = fir_filter(5, adder="tree")
        assert graph.count_by_kind()[OpKind.ADD] == 4
        graph.validate()

    def test_too_few_taps_rejected(self):
        with pytest.raises(GraphError, match=">= 2"):
            fir_filter(1)

    def test_bad_adder_mode_rejected(self):
        with pytest.raises(GraphError, match="tree.*chain"):
            fir_filter(4, adder="star")


class TestArLattice:
    def test_stage_counts(self):
        counts = ar_lattice(4).count_by_kind()
        assert counts[OpKind.MUL] == 8
        assert counts[OpKind.SUB] == 4
        assert counts[OpKind.ADD] == 4

    def test_serial_structure(self, library):
        shallow = ar_lattice(1).critical_path_length(library.latency_of)
        deep = ar_lattice(4).critical_path_length(library.latency_of)
        assert deep > shallow

    def test_zero_stages_rejected(self):
        with pytest.raises(GraphError, match=">= 1"):
            ar_lattice(0)


class TestRandomDfg:
    def test_requested_size(self):
        assert len(random_dfg(25, seed=1)) == 25

    def test_reproducible(self):
        g1 = random_dfg(20, seed=42)
        g2 = random_dfg(20, seed=42)
        assert g1.edges == g2.edges
        assert [op.kind for op in g1] == [op.kind for op in g2]

    def test_seeds_differ(self):
        g1 = random_dfg(20, seed=1)
        g2 = random_dfg(20, seed=2)
        assert g1.edges != g2.edges

    def test_every_nonsource_has_predecessor(self):
        graph = random_dfg(30, seed=3, layers=5)
        sources = graph.sources()
        for oid in graph.op_ids:
            if oid not in sources:
                assert graph.predecessors(oid)

    def test_layer_count_bounds_depth(self):
        graph = random_dfg(30, seed=4, layers=3)
        assert graph.critical_path_length(lambda op: 1) <= 3

    def test_single_operation(self):
        graph = random_dfg(1, seed=0)
        assert len(graph) == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(GraphError, match=">= 1"):
            random_dfg(0, seed=0)


class TestEwfSplit:
    def test_split_preserves_operation_mix(self):
        from repro.workloads import elliptic_wave_filter_split

        front, back = elliptic_wave_filter_split()
        counts = {}
        for graph in (front, back):
            for kind, n in graph.count_by_kind().items():
                counts[kind] = counts.get(kind, 0) + n
        assert counts[OpKind.ADD] == 26
        assert counts[OpKind.MUL] == 8
        assert len(front) + len(back) == 34

    def test_split_blocks_are_valid_dags(self):
        from repro.workloads import elliptic_wave_filter_split

        front, back = elliptic_wave_filter_split()
        front.validate()
        back.validate()
        assert len(front) >= 10
        assert len(back) >= 10

    def test_split_shortens_critical_paths(self, library):
        from repro.workloads import elliptic_wave_filter_split
        from repro.workloads.ewf import CRITICAL_PATH

        front, back = elliptic_wave_filter_split()
        cp_front = front.critical_path_length(library.latency_of)
        cp_back = back.critical_path_length(library.latency_of)
        assert cp_front < CRITICAL_PATH
        assert cp_back < CRITICAL_PATH

    def test_split_process_schedules_and_shares(self, library):
        """A two-block EWF process shares one pool with a diffeq process:
        the block maxima combine by eq. 9 rather than adding."""
        from repro.core import ModuloSystemScheduler, PeriodAssignment
        from repro.core.verify import verify_system_schedule
        from repro.ir.process import Block, Process, SystemSpec
        from repro.resources.assignment import ResourceAssignment
        from repro.workloads import differential_equation, elliptic_wave_filter_split

        front, back = elliptic_wave_filter_split()
        p1 = Process(name="p1")
        p1.add_block(Block(name="front", graph=front, deadline=15))
        p1.add_block(Block(name="back", graph=back, deadline=15))
        p2 = Process(name="p2")
        p2.add_block(Block(name="main", graph=differential_equation(), deadline=15))
        system = SystemSpec(name="split")
        system.add_process(p1)
        system.add_process(p2)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        assignment.make_global("multiplier", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment,
            PeriodAssignment({"adder": 15, "multiplier": 15}),
        )
        assert verify_system_schedule(result).ok
        # p1's authorization is the blockwise max, not the sum.
        auth = result.authorization("p1", "adder")
        fronts = result.schedule_of("p1", "front").peak_usage("adder")
        backs = result.schedule_of("p1", "back").peak_usage("adder")
        assert int(auth.max()) <= max(fronts, backs)
