"""Public API surface tests: everything advertised is importable and wired."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet(self):
        """The README quickstart must work verbatim."""
        from repro import ModuloSystemScheduler
        from repro.workloads import paper_assignment, paper_periods, paper_system

        system, library = paper_system()
        scheduler = ModuloSystemScheduler(library)
        assignment = paper_assignment(library)
        # Keep the test fast: only the two small diffeq processes.
        small = repro.SystemSpec(name="mini")
        for name in ("p4", "p5"):
            small.add_process(system.process(name))
        small_assignment = repro.ResourceAssignment(library)
        small_assignment.make_global("multiplier", ["p4", "p5"])
        result = scheduler.schedule(
            small, small_assignment, repro.PeriodAssignment({"multiplier": 15})
        )
        assert "multiplier" in result.summary()

    def test_exceptions_form_hierarchy(self):
        for name in (
            "GraphError",
            "SpecificationError",
            "ResourceError",
            "InfeasibleError",
            "PeriodError",
            "SchedulingError",
            "VerificationError",
            "BindingError",
            "SimulationError",
        ):
            assert issubclass(getattr(repro, name), repro.ReproError)
