"""Tests for repro.obs.merge (telemetry aggregation)."""

from repro.obs import merge_telemetry
from repro.obs.profile import render_profile


class TestMergeTelemetry:
    def test_empty(self):
        merged = merge_telemetry([])
        assert merged["runs"] == 0
        assert merged["counters"] == {}
        assert merged["wall_time"] == 0.0

    def test_sums_counters_and_phases(self):
        a = {
            "counters": {"force_evaluations": 10, "frame_reductions": 2},
            "phase_times": {"setup": 0.5, "reduction_loop": 1.0},
            "wall_time": 1.5,
            "iterations": 3,
            "events": 7,
        }
        b = {
            "counters": {"force_evaluations": 5},
            "phase_times": {"reduction_loop": 2.0},
            "wall_time": 2.0,
            "iterations": 4,
            "spans": 2,
        }
        merged = merge_telemetry([a, b])
        assert merged["runs"] == 2
        assert merged["counters"] == {
            "force_evaluations": 15,
            "frame_reductions": 2,
        }
        assert merged["phase_times"] == {"setup": 0.5, "reduction_loop": 3.0}
        assert merged["wall_time"] == 3.5
        assert merged["iterations"] == 7
        assert merged["events"] == 7
        assert merged["spans"] == 2

    def test_partial_summaries_merge_cleanly(self):
        merged = merge_telemetry([{}, {"counters": None}, {"wall_time": 1.0}])
        assert merged["runs"] == 3
        assert merged["wall_time"] == 1.0

    def test_merged_summary_renders_as_profile(self):
        merged = merge_telemetry(
            [
                {
                    "counters": {"force_evaluations": 4},
                    "phase_times": {"reduction_loop": 1.0},
                    "wall_time": 1.0,
                    "iterations": 2,
                }
            ]
        )
        report = render_profile(merged, title="merged")
        assert "phase timings" in report
        assert "force_evaluations" in report
