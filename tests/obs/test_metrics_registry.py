"""Tests for the typed metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    BUCKET_COUNT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_bound,
    bucket_index,
    merge_gauge_summary,
    merge_histogram_summary,
)


class TestBuckets:
    def test_bounds_are_geometric_and_shared(self):
        assert bucket_bound(0) > 0
        for index in range(1, 20):
            assert bucket_bound(index) == pytest.approx(
                2.0 * bucket_bound(index - 1)
            )

    def test_index_respects_bounds(self):
        for index in (0, 1, 7, 40, BUCKET_COUNT - 1):
            bound = bucket_bound(index)
            assert bucket_index(bound) == index
            assert bucket_index(bound * 1.01) == index + 1

    def test_nonpositive_values_land_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_index(1e300) <= BUCKET_COUNT


class TestHistogram:
    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("h")
        for value in (0.001, 0.002, 0.004, 0.100):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == 0.001
        assert summary["max"] == 0.100
        assert summary["min"] <= summary["p50"] <= summary["p95"]
        assert summary["p95"] <= summary["max"]

    def test_merge_matches_pooled_observations(self):
        values_a = [0.001 * (i + 1) for i in range(10)]
        values_b = [0.05 * (i + 1) for i in range(5)]
        pooled = Histogram("h")
        for value in values_a + values_b:
            pooled.observe(value)
        part_a, part_b = Histogram("h"), Histogram("h")
        for value in values_a:
            part_a.observe(value)
        for value in values_b:
            part_b.observe(value)
        part_a.merge_summary(part_b.summary())
        assert part_a.summary() == pooled.summary()

    def test_from_summary_round_trips(self):
        hist = Histogram("h")
        for value in (0.25, 0.5, 2.0):
            hist.observe(value)
        assert Histogram.from_summary("h", hist.summary()).summary() == (
            hist.summary()
        )


class TestSummaryMerges:
    def test_histogram_summary_merge_is_associative(self):
        parts = []
        for shift in range(3):
            hist = Histogram("h")
            for i in range(4):
                hist.observe(0.001 * (i + 1) * 10**shift)
            parts.append(hist.summary())

        def fold(order):
            into = {k: dict(v) if isinstance(v, dict) else v
                    for k, v in parts[order[0]].items()}
            into["buckets"] = dict(parts[order[0]]["buckets"])
            for index in order[1:]:
                merge_histogram_summary(into, parts[index])
            return into

        assert fold([0, 1, 2]) == fold([2, 0, 1]) == fold([1, 2, 0])

    def test_gauge_summary_merge_takes_extremes(self):
        a = Gauge("g")
        a.set(3.0)
        a.set(1.0)
        b = Gauge("g")
        b.set(7.0)
        into = a.summary()
        merge_gauge_summary(into, b.summary())
        assert into["min"] == 1.0
        assert into["max"] == 7.0
        assert into["samples"] == 3
        # The merged "value" is the max — last-written is meaningless
        # across parts, the extreme is order-independent.
        assert into["value"] == 7.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_dicts_are_sorted_and_skip_empty(self):
        registry = MetricsRegistry()
        registry.inc("z_counter")
        registry.inc("a_counter", 2)
        registry.observe("h", 0.5)
        registry.set_gauge("g", 4.0)
        assert list(registry.counters_dict()) == ["a_counter", "z_counter"]
        assert set(registry.histograms_dict()) == {"h"}
        assert set(registry.gauges_dict()) == {"g"}

    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_merge_folds_another_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.observe("h", 0.25)
        b.set_gauge("g", 9.0)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.histogram("h").count == 1
        assert a.gauge("g").summary()["max"] == 9.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 1.0)
        registry.reset()
        assert not registry.counters_dict()
        assert not registry.histograms_dict()
