"""Property tests: telemetry merging is associative and order-independent.

Worker telemetry arrives in completion order, which varies run to run;
a sweep's aggregate must not depend on it.  These tests generate random
telemetry parts — values drawn from dyadic rationals (multiples of
1/1024), which add exactly in binary floating point, so aggregates can
be compared with ``==`` instead of tolerances — and check that any
permutation and any fold grouping of the parts produces the same merge.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import merge_telemetry
from repro.obs.metrics import Gauge, Histogram

#: Dyadic rationals: exactly representable, exact addition for the value
#: ranges generated here — float nondeterminism cannot mask (or fake) an
#: order dependence.
dyadic = st.integers(min_value=0, max_value=4096).map(lambda n: n / 1024.0)

counter_names = st.sampled_from(
    ["force_evaluations", "force_cache_hits", "frame_reductions"]
)
phase_names = st.sampled_from(["setup", "reduction_loop", "finalization"])


@st.composite
def telemetry_parts(draw):
    """One run's telemetry summary with all mergeable sections."""
    part = {
        "counters": draw(
            st.dictionaries(
                counter_names, st.integers(min_value=0, max_value=1000)
            )
        ),
        "phase_times": draw(st.dictionaries(phase_names, dyadic)),
        "wall_time": draw(dyadic),
        "iterations": draw(st.integers(min_value=0, max_value=50)),
        "events": draw(st.integers(min_value=0, max_value=50)),
        "spans": draw(st.integers(min_value=0, max_value=10)),
    }
    gauge_values = draw(st.lists(dyadic, max_size=5))
    if gauge_values:
        gauge = Gauge("frames_remaining")
        for value in gauge_values:
            gauge.set(value)
        part["gauges"] = {"frames_remaining": gauge.summary()}
    hist_values = draw(st.lists(dyadic, max_size=6))
    if hist_values:
        hist = Histogram("select_seconds")
        for value in hist_values:
            hist.observe(value)
        part["histograms"] = {"select_seconds": hist.summary()}
    runs = draw(st.integers(min_value=0, max_value=3))
    if runs:
        part["runs"] = runs
    return part


@settings(max_examples=60, deadline=None)
@given(
    parts=st.lists(telemetry_parts(), min_size=2, max_size=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_merge_is_order_independent(parts, seed):
    shuffled = list(parts)
    random.Random(seed).shuffle(shuffled)
    assert merge_telemetry(parts) == merge_telemetry(shuffled)


@settings(max_examples=60, deadline=None)
@given(
    parts=st.lists(telemetry_parts(), min_size=3, max_size=5),
    split=st.integers(min_value=1, max_value=4),
)
def test_merge_is_associative(parts, split):
    """Merging a pre-merged group equals merging everything flat.

    This is the streaming-aggregation property: a sweep can fold worker
    summaries incrementally (merge the merged-so-far with each arrival)
    and land on the same aggregate as one batch merge at the end.
    """
    split = min(split, len(parts) - 1)
    left = merge_telemetry(parts[:split])
    grouped = merge_telemetry([left, *parts[split:]])
    flat = merge_telemetry(parts)
    assert grouped == flat


@settings(max_examples=40, deadline=None)
@given(parts=st.lists(telemetry_parts(), min_size=1, max_size=4))
def test_runs_count_parts_not_merges(parts):
    """``runs`` sums each part's own run count (default 1), so nesting
    merges never double- or under-counts the underlying runs."""
    merged = merge_telemetry(parts)
    assert merged["runs"] == sum(p.get("runs") or 1 for p in parts)


@settings(max_examples=40, deadline=None)
@given(parts=st.lists(telemetry_parts(), min_size=2, max_size=4))
def test_histogram_volumes_merge_exactly(parts):
    merged = merge_telemetry(parts)
    expected_count = sum(
        (p.get("histograms") or {})
        .get("select_seconds", {})
        .get("count", 0)
        for p in parts
    )
    got = (merged.get("histograms") or {}).get("select_seconds", {})
    assert got.get("count", 0) == expected_count
    expected_sum = sum(
        (p.get("histograms") or {}).get("select_seconds", {}).get("sum", 0.0)
        for p in parts
    )
    assert got.get("sum", 0.0) == expected_sum
