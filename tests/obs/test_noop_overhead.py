"""Tier-1 guard on the zero-cost-when-disabled contract (experiment O1).

``benchmarks/bench_obs_overhead.py`` measures the no-op instrumentation
overhead but only runs in the bench suite; this test pins the parts of
that contract that must never regress silently:

* **Parity** — a run through the default no-op tracer/audit makes the
  identical schedule (iterations, starts, area) as a fully instrumented
  run: instrumentation observes, never steers.
* **Allocation-freedom** — the no-op run records no events, spans,
  counters, gauges, histograms, or audit decisions anywhere.
* **Pinned call bound** — one disabled instrumentation point costs at
  most a few microseconds (bound pinned at 20 us/call, ~100x the
  expected cost, so only a structural regression — e.g. allocating an
  event object on the disabled path — can trip it on a noisy CI box).
"""

import time

from repro.core.scheduler import ModuloSystemScheduler
from repro.obs import NULL_AUDIT, NULL_TRACER, AuditTrail, Tracer
from repro.obs.counters import active_counters, count, observe, set_gauge
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system

#: Generous per-call ceiling for a disabled instrumentation point.
PINNED_BOUND_SECONDS = 20e-6
CALLS = 20_000


def _run(tracer=None, audit=None):
    system, library = paper_system()
    scheduler = ModuloSystemScheduler(
        library, weights=area_weights(library), tracer=tracer, audit=audit
    )
    return scheduler.schedule(
        system, paper_assignment(library), paper_periods()
    )


class TestNoopParity:
    def test_disabled_instrumentation_never_steers(self):
        baseline = _run()
        instrumented = _run(tracer=Tracer(), audit=AuditTrail())
        assert instrumented.iterations == baseline.iterations
        assert instrumented.total_area() == baseline.total_area()
        assert instrumented.instance_counts() == baseline.instance_counts()
        assert {
            key: sched.starts
            for key, sched in instrumented.block_schedules.items()
        } == {
            key: sched.starts
            for key, sched in baseline.block_schedules.items()
        }

    def test_noop_run_allocates_no_telemetry(self):
        result = _run()
        telemetry = result.telemetry
        assert telemetry["counters"] == {}
        assert telemetry["events"] == 0
        assert "gauges" not in telemetry
        assert "histograms" not in telemetry
        assert "audit" not in telemetry
        assert len(NULL_TRACER.events) == 0
        assert len(NULL_AUDIT) == 0


class TestPinnedBound:
    def _per_call(self, fn) -> float:
        # One warmup pass, then the best of three timed passes — the
        # minimum discards scheduler-induced stalls, which is the right
        # statistic for an upper-bound assertion.
        fn()
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best / CALLS

    def test_null_tracer_calls_stay_under_pinned_bound(self):
        def burst():
            for _ in range(CALLS):
                NULL_TRACER.event("reduction", op="a1")
                NULL_TRACER.count("force_evaluations")
                NULL_TRACER.observe("select_seconds", 0.001)
                NULL_TRACER.set_gauge("frames_remaining", 3)

        # 4 instrumentation points per loop iteration.
        assert self._per_call(burst) / 4 < PINNED_BOUND_SECONDS

    def test_ambient_hooks_stay_under_pinned_bound_when_inactive(self):
        assert active_counters() is None

        def burst():
            for _ in range(CALLS):
                count("force_evaluations")
                observe("dirty_set_size", 5)
                set_gauge("frames_remaining", 3)

        assert self._per_call(burst) / 3 < PINNED_BOUND_SECONDS

    def test_null_audit_record_stays_under_pinned_bound(self):
        def burst():
            for _ in range(CALLS):
                NULL_AUDIT.record(None)

        assert self._per_call(burst) < PINNED_BOUND_SECONDS
