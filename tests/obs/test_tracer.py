"""Tests for the hierarchical tracer, the no-op tracer, and JSONL export."""

import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer, as_tracer


class TestSpans:
    def test_spans_nest_and_close(self):
        tracer = Tracer()
        with tracer.span("schedule") as outer:
            assert tracer.open_spans == ["schedule"]
            with tracer.span("reduction", iter=1) as inner:
                assert tracer.open_spans == ["schedule", "reduction"]
                assert inner.depth == 1
                assert inner.path == ("schedule", "reduction")
                assert inner.attrs == {"iter": 1}
            assert tracer.open_spans == ["schedule"]
        assert tracer.open_spans == []
        assert outer.depth == 0
        # Children close before parents; both are recorded.
        assert [span.name for span in tracer.spans] == ["reduction", "schedule"]

    def test_span_durations_are_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.end is not None and outer.end is not None
        assert 0.0 <= inner.duration <= outer.duration
        assert outer.start <= inner.start

    def test_phase_times_aggregate_by_depth_and_name(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("phase_a"):
                pass
        with tracer.span("phase_b"):
            with tracer.span("phase_a"):  # nested: not a top-level phase
                pass
        phases = tracer.phase_times()
        assert set(phases) == {"phase_a", "phase_b"}
        assert phases["phase_a"] >= 0.0


class TestEvents:
    def test_events_carry_span_path(self):
        tracer = Tracer()
        with tracer.span("schedule"):
            tracer.event("reduction", op="a1", score=0.5)
        event = tracer.events[0]
        assert event.name == "reduction"
        assert event.path == ("schedule",)
        assert event.attrs == {"op": "a1", "score": 0.5}

    def test_counters_ride_along(self):
        tracer = Tracer()
        tracer.count("force_evaluations", 3)
        assert tracer.counters.get("force_evaluations") == 3
        assert tracer.summary()["counters"] == {"force_evaluations": 3}


class TestJsonl:
    def test_lines_round_trip_through_json_loads(self, tmp_path):
        tracer = Tracer()
        with tracer.span("schedule", system="demo"):
            tracer.event("reduction", iteration=1, op="m1")
            with tracer.span("finalization"):
                pass
        lines = list(tracer.jsonl_lines())
        assert len(lines) == 3  # 2 spans + 1 event
        parsed = [json.loads(line) for line in lines]
        kinds = {record["type"] for record in parsed}
        assert kinds == {"span", "event"}

        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(path)
        content = path.read_text(encoding="utf-8").splitlines()
        assert written == len(content) == len(lines)
        for line in content:
            record = json.loads(line)
            assert "type" in record and "name" in record

    def test_records_sorted_chronologically(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("early")
            with tracer.span("inner"):
                tracer.event("late")
        times = [
            record.get("start", record.get("time"))
            for record in tracer.records()
        ]
        assert times == sorted(times)


class TestNullTracer:
    def test_noop_tracer_adds_no_events(self):
        tracer = NullTracer()
        with tracer.span("schedule", system="x"):
            tracer.event("reduction", iteration=1)
            tracer.count("force_evaluations")
        assert len(tracer.events) == 0
        assert len(tracer.spans) == 0
        assert tracer.enabled is False
        assert tracer.summary()["events"] == 0

    def test_null_tracer_is_shared_and_reusable(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                NULL_TRACER.event("x")
        assert NULL_TRACER.phase_times() == {}

    def test_activate_is_noop(self):
        from repro.obs import active_counters

        with NULL_TRACER.activate():
            assert active_counters() is None

    def test_as_tracer_normalizes(self):
        assert as_tracer(None) is NULL_TRACER
        live = Tracer()
        assert as_tracer(live) is live


class TestDefensiveClose:
    def test_closing_parent_closes_dangling_children(self):
        tracer = Tracer()
        outer_cm = tracer.span("outer")
        outer = outer_cm.__enter__()
        tracer.span("inner").__enter__()  # never exited explicitly
        outer_cm.__exit__(None, None, None)
        assert tracer.open_spans == []
        names = {span.name for span in tracer.spans}
        assert names == {"outer", "inner"}
        for span in tracer.spans:
            assert span.end is not None
        assert outer.end is not None


@pytest.mark.parametrize("factory", [Tracer, NullTracer])
def test_interfaces_match(factory):
    """Both tracers expose the same instrumented-code-facing surface."""
    tracer = factory()
    for attribute in ("span", "event", "count", "activate", "phase_times",
                      "summary", "enabled", "events", "spans"):
        assert hasattr(tracer, attribute)
