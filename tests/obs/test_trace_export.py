"""Trace JSONL export guarantees: round-trip, monotonic timestamps,
span nesting, and event-order determinism of serial runs (S4)."""

import json

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.process import Block, Process, SystemSpec
from repro.obs import Tracer
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.forces import area_weights
from repro.workloads import random_dfg


def _small_problem():
    library = default_library()
    system = SystemSpec(name="export-demo")
    for index in range(2):
        graph = random_dfg(6, seed=40 + index)
        deadline = graph.critical_path_length(library.latency_of) + 3
        process = Process(name=f"p{index}")
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment.all_global(library, system)
    periods = PeriodAssignment({name: 4 for name in assignment.global_types})
    return system, library, assignment, periods


def _traced_run():
    system, library, assignment, periods = _small_problem()
    tracer = Tracer()
    ModuloSystemScheduler(
        library, weights=area_weights(library), tracer=tracer
    ).schedule(system, assignment, periods)
    return tracer


class TestRoundTrip:
    def test_every_line_parses_and_rebuilds_the_records(self, tmp_path):
        tracer = _traced_run()
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert written == len(lines) > 0
        parsed = [json.loads(line) for line in lines]
        assert parsed == list(tracer.records())
        for record in parsed:
            assert record["type"] in ("span", "event")
            assert isinstance(record["name"], str)
            assert isinstance(record["path"], str)


class TestMonotonicTimestamps:
    def test_records_are_time_sorted(self):
        tracer = _traced_run()
        times = [
            record.get("start", record.get("time"))
            for record in tracer.records()
        ]
        assert all(t is not None and t >= 0.0 for t in times)
        assert times == sorted(times)

    def test_event_emission_order_is_monotonic(self):
        tracer = _traced_run()
        event_times = [event.time for event in tracer.events]
        assert event_times == sorted(event_times)


class TestSpanNesting:
    def test_exported_depths_and_paths_nest_consistently(self):
        tracer = _traced_run()
        for span in tracer.spans:
            assert span.depth == len(span.path) - 1
            assert span.path[-1] == span.name
            assert span.end is not None and span.end >= span.start
        top_level = [span for span in tracer.spans if span.depth == 0]
        assert {span.name for span in top_level} == {"schedule"}
        phases = [span for span in tracer.spans if span.depth == 1]
        assert {span.name for span in phases} >= {
            "setup",
            "reduction_loop",
            "finalization",
        }

    def test_events_are_tagged_with_enclosing_span(self):
        tracer = _traced_run()
        events = tracer.events_named("reduction")
        assert events, "a traced run must emit reduction events"
        for event in events:
            assert event.path == ("schedule", "reduction_loop")


class TestDeterminism:
    def test_serial_runs_export_identical_event_streams(self, tmp_path):
        """Two serial runs of the same problem must produce the same
        events in the same order — the ``--workers 1`` determinism the
        docs promise.  Timestamps differ run to run, so they are the
        only field masked out."""

        def stream(tracer):
            masked = []
            for record in tracer.records():
                record = dict(record)
                record.pop("time", None)
                record.pop("start", None)
                record.pop("duration", None)
                masked.append(record)
            return masked

        first, second = _traced_run(), _traced_run()
        assert stream(first) == stream(second)
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        first.write_jsonl(path_a)
        second.write_jsonl(path_b)
        assert len(path_a.read_text(encoding="utf-8").splitlines()) == len(
            path_b.read_text(encoding="utf-8").splitlines()
        )
