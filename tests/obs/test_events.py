"""Tests for the event bus, the JSONL event writer, and Prometheus text."""

import json

from repro.obs import EventBus, JsonlEventWriter, Tracer, prometheus_text
from repro.obs.metrics import bucket_bound


class TestEventBus:
    def test_subscribers_receive_published_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        tracer = Tracer(bus=bus)
        tracer.event("reduction", op="a1")
        tracer.event("commit", op="a1")
        assert [event.name for event in seen] == ["reduction", "commit"]
        assert bus.published == 2
        # The tracer also keeps its own copy — the bus observes, it does
        # not replace collection.
        assert len(tracer.events) == 2

    def test_subscribe_returns_callback_for_decorator_use(self):
        bus = EventBus()

        @bus.subscribe
        def on_event(event):
            pass

        assert len(bus) == 1
        bus.unsubscribe(on_event)
        assert len(bus) == 0

    def test_raising_subscriber_is_detached_not_fatal(self):
        bus = EventBus()
        seen = []

        def broken(event):
            raise RuntimeError("boom")

        bus.subscribe(broken)
        bus.subscribe(seen.append)
        tracer = Tracer(bus=bus)
        tracer.event("reduction")  # must not raise
        tracer.event("reduction")
        assert len(seen) == 2  # the healthy subscriber kept receiving
        assert len(bus) == 1  # the raiser is gone after one delivery

    def test_unsubscribe_unknown_callback_is_harmless(self):
        bus = EventBus()
        bus.unsubscribe(lambda event: None)


class TestJsonlEventWriter:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlEventWriter(str(path)) as writer:
            bus.subscribe(writer)
            tracer = Tracer(bus=bus)
            with tracer.span("schedule"):
                tracer.event("reduction", iteration=1, op="m1")
                tracer.event("commit", iteration=1, changed_ops=3)
            assert writer.written == 2
        records = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert [r["name"] for r in records] == ["reduction", "commit"]
        assert records[0]["attrs"] == {"iteration": 1, "op": "m1"}
        assert records[0]["path"] == "schedule"

    def test_accepts_an_open_handle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            writer = JsonlEventWriter(handle)
            tracer = Tracer(bus=EventBus())
            tracer.bus.subscribe(writer)
            tracer.event("prune", bound=13.0)
            writer.close()  # must not close the borrowed handle
            handle.write("tail\n")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[0])["name"] == "prune"
        assert lines[1] == "tail"


class TestPrometheusText:
    def test_counters_gauges_histograms_render(self):
        tracer = Tracer()
        tracer.count("force_evaluations", 42)
        tracer.set_gauge("frames_remaining", 7.0)
        tracer.observe("select_seconds", 0.002)
        tracer.observe("select_seconds", 0.004)
        text = prometheus_text(tracer.summary())
        assert "# TYPE repro_force_evaluations_total counter" in text
        assert "repro_force_evaluations_total 42" in text
        assert "repro_frames_remaining 7" in text
        assert "# TYPE repro_select_seconds histogram" in text
        assert 'repro_select_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_select_seconds_count 2" in text

    def test_bucket_series_is_cumulative(self):
        tracer = Tracer()
        for value in (0.001, 0.001, 0.1):
            tracer.observe("select_seconds", value)
        text = prometheus_text(tracer.summary())
        small = bucket_bound(
            next(
                i
                for i in range(200)
                if bucket_bound(i) >= 0.001
            )
        )
        assert f'repro_select_seconds_bucket{{le="{small!r}"}} 2' in text
        assert 'repro_select_seconds_bucket{le="+Inf"} 3' in text

    def test_empty_telemetry_renders_empty(self):
        assert prometheus_text({"counters": {}}) == ""

    def test_phase_times_become_labelled_gauges(self):
        text = prometheus_text(
            {"counters": {}, "phase_times": {"reduction_loop": 1.5}}
        )
        assert 'repro_phase_seconds{phase="reduction_loop"} 1.5' in text
