"""End-to-end telemetry: scheduler counters, phases, events, no-op parity.

The fixed workloads here are small enough that the counter values can be
cross-checked exactly against the per-iteration event stream:

* ``frame_reductions`` — one per committed IFDS reduction, so it equals
  the reported iteration count on workloads without propagation;
* ``force_evaluations`` — two placement forces per mobile candidate per
  iteration; with a single resource type and no precedence edges each
  placement force is exactly one Hooke evaluation, so the counter equals
  ``sum(2 * candidates)`` over the reduction events;
* ``modulo_max_transforms`` — zero for all-local scheduling, positive as
  soon as a global type exists.
"""

import json

import pytest

from repro import (
    Block,
    DataFlowGraph,
    ModuloSystemScheduler,
    OpKind,
    Process,
    ResourceAssignment,
    SystemSpec,
    Tracer,
    default_library,
    loads_problem,
)

GLOBAL_SYS = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
global multiplier p1 p2
period multiplier 4
"""


def independent_adds_system(n_ops: int = 4, deadline: int = 6) -> SystemSpec:
    graph = DataFlowGraph(name="par")
    for i in range(n_ops):
        graph.add(f"a{i}", OpKind.ADD)
    system = SystemSpec(name="par-sys")
    process = Process(name="p")
    process.add_block(Block(name="main", graph=graph, deadline=deadline))
    system.add_process(process)
    return system


class TestExactCounters:
    def test_local_counters_exact_on_independent_adds(self):
        library = default_library()
        system = independent_adds_system(n_ops=4, deadline=6)
        tracer = Tracer()
        scheduler = ModuloSystemScheduler(library, tracer=tracer)
        result = scheduler.schedule(
            system, ResourceAssignment.all_local(library)
        )
        counters = result.telemetry["counters"]

        # Every operation starts with frame [0, 5]; each of the 4 frames
        # shrinks one step per iteration until width 1: 4 * 5 iterations.
        assert result.iterations == 4 * 5
        assert counters["frame_reductions"] == result.iterations
        assert counters["scheduler_iterations"] == result.iterations

        # Cross-check the force-evaluation count against the event stream:
        # one type, no edges => one Hooke evaluation per placement force,
        # two placement forces per candidate per iteration.
        events = tracer.events_named("reduction")
        assert len(events) == result.iterations
        expected_forces = sum(2 * e.attrs["candidates"] for e in events)
        assert counters["force_evaluations"] == expected_forces

        # One committed reduction touches exactly one distribution (all
        # operations share the adder type, no propagation).
        assert counters["distribution_rebuilds"] == result.iterations

        # No global types anywhere: the modulo machinery must be silent.
        assert counters.get("modulo_max_transforms", 0) == 0

    def test_global_run_counts_modulo_transforms(self):
        problem = loads_problem(GLOBAL_SYS)
        tracer = Tracer()
        result = problem.schedule(tracer=tracer)
        counters = result.telemetry["counters"]
        assert counters["modulo_max_transforms"] > 0
        assert counters["frame_reductions"] >= result.iterations
        assert result.telemetry["counters"] == tracer.counters.as_dict()

    def test_counters_deterministic_across_runs(self):
        problem = loads_problem(GLOBAL_SYS)
        first = problem.schedule(tracer=Tracer()).telemetry["counters"]
        second = problem.schedule(tracer=Tracer()).telemetry["counters"]
        assert first == second


class TestNoOpParity:
    """The acceptance guard: no tracer => same decisions, no telemetry."""

    def test_iteration_counts_identical_with_and_without_tracer(self):
        problem = loads_problem(GLOBAL_SYS)
        plain = problem.schedule()
        traced = problem.schedule(tracer=Tracer())
        assert plain.iterations == traced.iterations
        assert plain.instance_counts() == traced.instance_counts()
        schedules = {
            key: sched.starts for key, sched in plain.block_schedules.items()
        }
        traced_schedules = {
            key: sched.starts for key, sched in traced.block_schedules.items()
        }
        assert schedules == traced_schedules

    def test_noop_run_has_empty_counters_but_phase_times(self):
        problem = loads_problem(GLOBAL_SYS)
        result = problem.schedule()
        assert result.telemetry["counters"] == {}
        assert result.telemetry["events"] == 0
        phases = result.telemetry["phase_times"]
        assert set(phases) == {"setup", "reduction_loop", "finalization"}


class TestPhaseTimes:
    def test_phases_sum_to_wall_time(self):
        problem = loads_problem(GLOBAL_SYS)
        result = problem.schedule()
        phases = result.telemetry["phase_times"]
        assert all(seconds >= 0.0 for seconds in phases.values())
        assert sum(phases.values()) == pytest.approx(result.wall_time)
        assert result.telemetry["wall_time"] == result.wall_time
        assert result.telemetry["iterations"] == result.iterations


class TestTraceStream:
    def test_one_event_per_iteration_and_jsonl_round_trip(self, tmp_path):
        problem = loads_problem(GLOBAL_SYS)
        tracer = Tracer()
        result = problem.schedule(tracer=tracer)
        events = tracer.events_named("reduction")
        assert len(events) == result.iterations
        for event in events:
            assert set(event.attrs) >= {
                "iteration",
                "process",
                "block",
                "op",
                "side",
                "score",
                "candidates",
                "frames_remaining",
            }
            assert event.attrs["side"] in ("low", "high")
        # Mobility can only shrink.
        remaining = [event.attrs["frames_remaining"] for event in events]
        assert remaining[-1] == 0
        assert all(a >= b for a, b in zip(remaining, remaining[1:]))

        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert written == len(lines) >= result.iterations
        names = set()
        for line in lines:
            record = json.loads(line)
            names.add(record["name"])
        assert {"schedule", "setup", "reduction_loop", "finalization",
                "reduction"} <= names
