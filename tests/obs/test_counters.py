"""Tests for the counter registry and its ambient activation hook."""

from repro.obs import Counters, active_counters, count


class TestCounters:
    def test_starts_empty(self):
        counters = Counters()
        assert counters.as_dict() == {}
        assert counters.get("anything") == 0
        assert not counters

    def test_inc_and_get(self):
        counters = Counters()
        counters.inc("force_evaluations")
        counters.inc("force_evaluations", 4)
        assert counters.get("force_evaluations") == 5
        assert bool(counters)

    def test_as_dict_sorted(self):
        counters = Counters()
        counters.inc("zeta")
        counters.inc("alpha", 2)
        assert list(counters.as_dict()) == ["alpha", "zeta"]
        assert counters.as_dict() == {"alpha": 2, "zeta": 1}

    def test_reset(self):
        counters = Counters()
        counters.inc("x", 3)
        counters.reset()
        assert counters.as_dict() == {}

    def test_merge(self):
        a, b = Counters(), Counters()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 5)
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 5}


class TestAmbientActivation:
    def test_count_without_activation_is_noop(self):
        assert active_counters() is None
        count("orphan")  # must not raise, must not record anywhere
        assert active_counters() is None

    def test_count_reaches_active_registry(self):
        counters = Counters()
        with counters.activate():
            assert active_counters() is counters
            count("hits")
            count("hits", 2)
        assert counters.get("hits") == 3
        assert active_counters() is None

    def test_nested_activation_restores_previous(self):
        outer, inner = Counters(), Counters()
        with outer.activate():
            count("a")
            with inner.activate():
                count("a")
            count("a")
        assert outer.get("a") == 2
        assert inner.get("a") == 1

    def test_activation_restored_on_exception(self):
        counters = Counters()
        try:
            with counters.activate():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active_counters() is None
