"""Tests for the decision audit trail: ring buffer, export, scheduler
integration, and the observe-never-steer guarantee."""

import json

import pytest

from repro.core.scheduler import ModuloSystemScheduler
from repro.obs import NULL_AUDIT, AuditTrail, CandidateAudit, DecisionAudit
from repro.obs.audit import CACHE_FRESH, CACHE_HIT
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system


def _decision(iteration, op="a1", process="p1"):
    return DecisionAudit(
        iteration=iteration,
        process=process,
        block="main",
        op=op,
        side="low",
        score=1.5,
        force_low=1.5,
        force_high=2.5,
        frame_before=(0, 4),
        frame_after=(1, 4),
        cache=CACHE_FRESH,
        changed_ops=(op,),
        touched_types=("adder",),
        scopes={"adder": "process"},
        candidates=(
            CandidateAudit(
                process=process,
                block="main",
                op=op,
                force_low=1.5,
                force_high=2.5,
                score=1.5,
                cache=CACHE_HIT,
            ),
        ),
    )


class TestRingBuffer:
    def test_records_accumulate_oldest_first(self):
        trail = AuditTrail()
        for i in range(3):
            trail.record(_decision(i))
        assert [d.iteration for d in trail.decisions] == [0, 1, 2]
        assert len(trail) == trail.recorded == 3
        assert trail.dropped == 0

    def test_capacity_drops_oldest(self):
        trail = AuditTrail(2)
        for i in range(5):
            trail.record(_decision(i))
        assert [d.iteration for d in trail.decisions] == [3, 4]
        assert trail.recorded == 5
        assert trail.dropped == 3
        summary = trail.summary()
        assert summary["decisions"] == 2
        assert summary["dropped"] == 3
        assert summary["capacity"] == 2

    def test_unbounded_capacity(self):
        trail = AuditTrail(None)
        for i in range(100):
            trail.record(_decision(i))
        assert len(trail) == 100 and trail.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            AuditTrail(0)

    def test_decisions_for_filters_by_winner(self):
        trail = AuditTrail()
        trail.record(_decision(0, op="a1", process="p1"))
        trail.record(_decision(1, op="m1", process="p2"))
        trail.record(_decision(2, op="a1", process="p2"))
        assert len(trail.decisions_for(op="a1")) == 2
        assert len(trail.decisions_for(process="p2")) == 2
        assert len(trail.decisions_for(process="p2", op="a1")) == 1


class TestExport:
    def test_jsonl_round_trips_with_summary_header(self, tmp_path):
        trail = AuditTrail()
        trail.record(_decision(0))
        trail.record(_decision(1))
        path = tmp_path / "audit.jsonl"
        written = trail.write_jsonl(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert written == len(lines) == 3  # header + 2 decisions
        header = json.loads(lines[0])
        assert header["type"] == "audit_summary"
        assert header["decisions"] == 2
        for line in lines[1:]:
            record = json.loads(line)
            assert record["type"] == "decision"
            assert record["frame_before"] == [0, 4]
            assert record["candidates"][0]["cache"] == CACHE_HIT

    def test_as_records_omits_empty_fields(self):
        bare = DecisionAudit(
            iteration=0,
            process="p1",
            block="main",
            op="a1",
            side="high",
            score=0.0,
            force_low=0.0,
            force_high=0.0,
            frame_before=(0, 1),
            frame_after=(0, 0),
        )
        trail = AuditTrail()
        trail.record(bare)
        (record,) = trail.as_records()
        assert "scopes" not in record
        assert "candidates" not in record


class TestNullTrail:
    def test_null_audit_is_inert(self):
        NULL_AUDIT.record(_decision(0))
        assert len(NULL_AUDIT) == 0
        assert NULL_AUDIT.enabled is False
        assert NULL_AUDIT.decisions == []
        assert NULL_AUDIT.as_records() == []
        assert NULL_AUDIT.summary()["recorded"] == 0


class TestSchedulerIntegration:
    @pytest.fixture(scope="class")
    def audited_run(self):
        system, library = paper_system()
        audit = AuditTrail()
        scheduler = ModuloSystemScheduler(
            library, weights=area_weights(library), audit=audit
        )
        result = scheduler.schedule(
            system, paper_assignment(library), paper_periods()
        )
        return result, audit

    def test_one_decision_per_iteration(self, audited_run):
        result, audit = audited_run
        assert audit.recorded == result.iterations
        assert result.telemetry["audit"]["recorded"] == result.iterations

    def test_decisions_carry_frames_and_candidates(self, audited_run):
        _, audit = audited_run
        for decision in audit.decisions[:50]:
            lo, hi = decision.frame_before
            after_lo, after_hi = decision.frame_after
            assert lo <= hi
            # The commit shrank the winner's frame on the chosen side.
            assert (after_lo, after_hi) != (lo, hi)
            assert after_lo >= lo and after_hi <= hi
            assert decision.op in decision.changed_ops
            assert decision.candidates, "keep_candidates must capture scans"
            winner = [
                c
                for c in decision.candidates
                if (c.process, c.block, c.op)
                == (decision.process, decision.block, decision.op)
            ]
            assert winner and winner[0].score == decision.score

    def test_winner_has_maximal_score(self, audited_run):
        """Selection picks the largest eta-weighted force difference."""
        _, audit = audited_run
        for decision in audit.decisions[:50]:
            best = max(c.score for c in decision.candidates)
            assert decision.score >= best - 1e-9

    def test_audit_never_steers(self):
        """An audited run reaches the identical schedule and area."""
        system, library = paper_system()
        plain = ModuloSystemScheduler(
            library, weights=area_weights(library)
        ).schedule(system, paper_assignment(library), paper_periods())

        system2, library2 = paper_system()
        audited = ModuloSystemScheduler(
            library2, weights=area_weights(library2), audit=AuditTrail()
        ).schedule(system2, paper_assignment(library2), paper_periods())

        assert audited.iterations == plain.iterations
        assert audited.total_area() == plain.total_area()
        assert {
            key: sched.starts
            for key, sched in audited.block_schedules.items()
        } == {
            key: sched.starts for key, sched in plain.block_schedules.items()
        }

    def test_winner_only_mode_skips_candidates(self):
        system, library = paper_system()
        audit = AuditTrail(keep_candidates=False)
        ModuloSystemScheduler(
            library, weights=area_weights(library), audit=audit
        ).schedule(system, paper_assignment(library), paper_periods())
        assert audit.recorded > 0
        assert all(not d.candidates for d in audit.decisions)
