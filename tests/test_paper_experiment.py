"""Integration test: the paper's §7 multi-process experiment (Table 1).

Reproduction targets (shape, not absolute numbers — see DESIGN.md):

* pure-global assignment needs strictly fewer resources than the
  traditional all-local scheduling;
* the local run's resource mix matches the paper exactly
  (6 adders, 2 subtracters, 5 multipliers = area 28);
* the global run stays at or below the paper's pool sizes
  (4 adders, 1 subtracter, 3 multipliers = area 17);
* the local/global area ratio is at least the paper's 1.65;
* the result passes static verification, binds to instances, and
  survives randomized reactive simulation without a single conflict.
"""

import pytest

from repro.analysis.compare import compare_scopes
from repro.analysis.tables import table1
from repro.binding.instances import bind_instances
from repro.core.verify import verify_system_schedule
from repro.scheduling.forces import area_weights
from repro.sim.simulator import SystemSimulator
from repro.workloads import paper_assignment, paper_periods, paper_system


@pytest.fixture(scope="module")
def comparison():
    system, library = paper_system()
    return compare_scopes(
        system,
        library,
        paper_assignment(library),
        paper_periods(),
        weights=area_weights(library),
    )


class TestPaperExperiment:
    def test_local_baseline_matches_paper_exactly(self, comparison):
        counts = comparison.local_result.instance_counts()
        assert counts == {"adder": 6, "subtracter": 2, "multiplier": 5}
        assert comparison.local_area == 28.0

    def test_global_run_at_or_below_paper_pools(self, comparison):
        counts = comparison.global_result.instance_counts()
        assert counts["adder"] <= 4
        assert counts["subtracter"] <= 1
        assert counts["multiplier"] <= 3
        assert comparison.global_area <= 17.0

    def test_area_ratio_at_least_paper(self, comparison):
        assert comparison.area_ratio >= 1.65
        assert comparison.area_saving >= 0.39

    def test_global_result_verifies(self, comparison):
        report = verify_system_schedule(comparison.global_result)
        assert report.ok, str(report)

    def test_local_result_verifies(self, comparison):
        report = verify_system_schedule(comparison.local_result)
        assert report.ok, str(report)

    def test_global_result_binds(self, comparison):
        bind_instances(comparison.global_result).validate()

    def test_simulation_conflict_free(self, comparison):
        for seed in (0, 1, 2):
            stats = SystemSimulator(comparison.global_result, seed=seed).run(1500)
            assert stats.ok, stats.trace.render()

    def test_grid_spacing_is_the_period(self, comparison):
        for process in ("p1", "p2", "p3", "p4", "p5"):
            assert comparison.global_result.grid_spacing(process) == 15

    def test_table1_renders_all_sections(self, comparison):
        text = table1(comparison.global_result)
        for needle in ("adder", "multiplier", "subtracter", "p1", "p5", "all"):
            assert needle in text
