"""CLI robustness: error contract, preflight, budgets, trials, resume.

The error contract (docs/robustness.md): every failure prints one
``error [CODE]: message`` line on stderr and exits 2; tracebacks appear
only under ``-v``; exit 1 is reserved for "ran fine but found nothing
usable" (no candidate schedules, warnings from ``check``).
"""

import pytest

from repro.cli import main

VALID = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
edge p2 main m1 a1
global multiplier p1 p2
period multiplier 4
"""

BROKEN = "system demo\nblock p1 main deadline=8\n"  # block before process

WARNING_ONLY = VALID.replace("period multiplier 4", "period multiplier 16")


@pytest.fixture
def sys_file(tmp_path):
    path = tmp_path / "demo.sys"
    path.write_text(VALID, encoding="utf-8")
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.sys"
    path.write_text(BROKEN, encoding="utf-8")
    return str(path)


class TestErrorContract:
    def test_repro_error_prints_code_and_exits_2(self, broken_file, capsys):
        assert main(["schedule", broken_file, "--no-check"]) == 2
        err = capsys.readouterr().err
        assert "error [SPEC]:" in err
        assert "Traceback" not in err

    def test_os_error_prints_code_and_exits_2(self, capsys):
        assert main(["schedule", "/no/such/file.sys"]) == 2
        err = capsys.readouterr().err
        assert "error [OS]:" in err

    def test_traceback_only_under_verbose(self, broken_file, capsys):
        assert main(["schedule", broken_file, "--no-check", "-v"]) == 2
        err = capsys.readouterr().err
        assert "Traceback" in err
        assert "error [SPEC]:" in err


class TestCheckCommand:
    def test_clean_file_exits_0(self, sys_file, capsys):
        assert main(["check", sys_file]) == 0
        out = capsys.readouterr().out
        assert "ok (0 errors" in out

    def test_warnings_exit_1(self, tmp_path, capsys):
        path = tmp_path / "warn.sys"
        path.write_text(WARNING_ONLY, encoding="utf-8")
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "PERIOD103" in out

    def test_errors_exit_2_with_stable_code(self, broken_file, capsys):
        assert main(["check", broken_file]) == 2
        out = capsys.readouterr().out
        assert "SYS001" in out


class TestPreflightGate:
    def test_schedule_vetoes_broken_input(self, broken_file, capsys):
        assert main(["schedule", broken_file]) == 2
        err = capsys.readouterr().err
        assert "SYS001" in err
        assert "error [CHECK]:" in err

    def test_sweep_vetoes_broken_input(self, broken_file, capsys):
        assert main(["sweep", broken_file]) == 2
        assert "SYS001" in capsys.readouterr().err

    def test_warnings_do_not_veto(self, tmp_path, capsys):
        path = tmp_path / "warn.sys"
        path.write_text(WARNING_ONLY, encoding="utf-8")
        assert main(["schedule", str(path)]) == 0
        captured = capsys.readouterr()
        assert "PERIOD103" in captured.err  # surfaced, not fatal
        assert "verified" in captured.out


class TestBudgetFlags:
    def test_exhaustion_warns_and_degrades(self, sys_file, capsys):
        assert main(["schedule", sys_file, "--max-iterations", "1"]) == 0
        captured = capsys.readouterr()
        assert "budget exhausted" in captured.err
        assert "verified" in captured.out  # fallback still verifies

    def test_ample_budget_stays_silent(self, sys_file, capsys):
        assert main(["schedule", sys_file, "--max-iterations", "99999"]) == 0
        assert "budget exhausted" not in capsys.readouterr().err


class TestSimulateTrials:
    def test_multi_trial_campaign(self, sys_file, capsys):
        assert main(
            ["simulate", sys_file, "--cycles", "200", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 trials" in out
        assert "seeds 0..2" in out

    def test_single_trial_keeps_plain_summary(self, sys_file, capsys):
        assert main(["simulate", sys_file, "--cycles", "200"]) == 0
        assert "violations: none" in capsys.readouterr().out


class TestSweepResume:
    def test_second_run_restores_from_journal(self, sys_file, tmp_path, capsys):
        journal = str(tmp_path / "ck.jsonl")
        assert main(["sweep", sys_file, "--resume", journal]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", sys_file, "--resume", journal]) == 0
        second = capsys.readouterr().out
        assert "restored from the journal" in second
        assert first.splitlines()[-1] == second.splitlines()[-1]  # same best
