"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    Block,
    DataFlowGraph,
    OpKind,
    Process,
    SystemSpec,
    default_library,
)


@pytest.fixture
def library():
    """The paper's default resource library."""
    return default_library()


@pytest.fixture
def chain_graph():
    """add -> mul -> add: a three-operation chain."""
    graph = DataFlowGraph(name="chain")
    graph.add("a1", OpKind.ADD)
    graph.add("m1", OpKind.MUL)
    graph.add("a2", OpKind.ADD)
    graph.add_edges([("a1", "m1"), ("m1", "a2")])
    return graph


@pytest.fixture
def diamond_graph():
    """a1 feeds m1 and a2; both feed a3 (classic diamond)."""
    graph = DataFlowGraph(name="diamond")
    graph.add("a1", OpKind.ADD)
    graph.add("m1", OpKind.MUL)
    graph.add("a2", OpKind.ADD)
    graph.add("a3", OpKind.ADD)
    graph.add_edges([("a1", "m1"), ("a1", "a2"), ("m1", "a3"), ("a2", "a3")])
    return graph


@pytest.fixture
def parallel_adds_graph():
    """Four independent additions (maximal scheduling freedom)."""
    graph = DataFlowGraph(name="par4")
    for i in range(4):
        graph.add(f"a{i}", OpKind.ADD)
    return graph


def make_two_process_system(deadline_a: int = 8, deadline_b: int = 8) -> SystemSpec:
    """Two small independent processes, each a single block of adds."""
    system = SystemSpec(name="two-proc")
    for name, deadline in (("pa", deadline_a), ("pb", deadline_b)):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("x1", OpKind.ADD)
        graph.add("x2", OpKind.ADD)
        graph.add("x3", OpKind.ADD)
        graph.add_edge("x1", "x3")
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    return system


@pytest.fixture
def two_process_system():
    return make_two_process_system()
