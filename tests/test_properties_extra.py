"""Additional property-based tests: serialization, guards, RC modulo, RTL."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir import textio
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.rtl.design import build_rtl
from repro.scheduling.distribution import combine_rows
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.scheduling.schedule import BlockSchedule
from repro.workloads import random_dfg

LIBRARY = default_library()


# ---------------------------------------------------------------------------
# Text serialization round trip
# ---------------------------------------------------------------------------
@settings(max_examples=25)
@given(
    n_ops=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_textio_round_trip_on_random_graphs(n_ops, seed):
    graph = random_dfg(n_ops, seed=seed)
    loaded = textio.loads(textio.dumps(graph))
    assert loaded.name == graph.name
    assert loaded.op_ids == graph.op_ids
    assert loaded.edges == graph.edges
    assert [op.kind for op in loaded] == [op.kind for op in graph]


# ---------------------------------------------------------------------------
# Guarded distribution combination
# ---------------------------------------------------------------------------
row_strategy = st.lists(
    st.floats(min_value=0, max_value=2, allow_nan=False), min_size=4, max_size=4
)


@settings(max_examples=50)
@given(rows=st.lists(row_strategy, min_size=1, max_size=6), data=st.data())
def test_combine_rows_between_max_and_sum(rows, data):
    """The guarded combination always lies between the pointwise max of
    all rows and their plain sum."""
    arrays = {f"op{i}": np.array(r) for i, r in enumerate(rows)}
    guards = {}
    for op_id in arrays:
        guarded = data.draw(st.booleans(), label=f"{op_id} guarded")
        if guarded:
            branch = data.draw(st.sampled_from(["t", "e"]), label=f"{op_id} branch")
            guards[op_id] = ("c", branch)
        else:
            guards[op_id] = None
    combined = combine_rows(arrays, guards, 4)
    plain_sum = sum(arrays.values())
    pointwise_max = np.maximum.reduce(list(arrays.values()))
    assert np.all(combined <= plain_sum + 1e-9)
    assert np.all(combined >= pointwise_max - 1e-9)


@settings(max_examples=30)
@given(
    n_then=st.integers(min_value=0, max_value=3),
    n_else=st.integers(min_value=0, max_value=3),
    n_plain=st.integers(min_value=0, max_value=3),
    deadline=st.integers(min_value=2, max_value=6),
)
def test_guarded_usage_profile_is_branch_worst_case(
    n_then, n_else, n_plain, deadline
):
    if n_then + n_else + n_plain == 0:
        return
    graph = DataFlowGraph(name="g")
    for i in range(n_then):
        graph.add(f"t{i}", OpKind.ADD, guard=("c", "then"))
    for i in range(n_else):
        graph.add(f"e{i}", OpKind.ADD, guard=("c", "else"))
    for i in range(n_plain):
        graph.add(f"u{i}", OpKind.ADD)
    # Everything at step 0: worst case = plain + max(then, else).
    starts = {oid: 0 for oid in graph.op_ids}
    sched = BlockSchedule(
        graph=graph, library=LIBRARY, starts=starts, deadline=deadline
    )
    profile = sched.usage_profile("adder")
    assert profile[0] == n_plain + max(n_then, n_else)
    assert profile[1:].sum() == 0


# ---------------------------------------------------------------------------
# IFDS with guards on random graphs stays valid
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_ops=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=200),
    guard_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_ifds_valid_with_random_guards(n_ops, seed, guard_fraction):
    import random as stdlib_random

    base = random_dfg(n_ops, seed=seed)
    rng = stdlib_random.Random(seed)
    graph = DataFlowGraph(name="guarded")
    for op in base:
        guard = None
        if rng.random() < guard_fraction:
            guard = ("c", rng.choice(["t", "e"]))
        graph.add(op.op_id, op.kind, guard=guard)
    graph.add_edges(base.edges)
    deadline = graph.critical_path_length(LIBRARY.latency_of) + 3
    schedule = ImprovedForceDirectedScheduler(LIBRARY).schedule(
        Block(name="b", graph=graph, deadline=deadline)
    )
    schedule.validate()


# ---------------------------------------------------------------------------
# RTL derivation on random shared systems
# ---------------------------------------------------------------------------
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n1=st.integers(min_value=2, max_value=8),
    n2=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_rtl_consistent_on_random_systems(n1, n2, seed):
    system = SystemSpec(name="rand-rtl")
    for name, n_ops, offset in (("p1", n1, 0), ("p2", n2, 1)):
        graph = random_dfg(n_ops, seed=seed + offset)
        deadline = graph.critical_path_length(LIBRARY.latency_of) + 3
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment.all_global(LIBRARY, system)
    if not assignment.global_types:
        return
    periods = PeriodAssignment({t: 2 for t in assignment.global_types})
    result = ModuloSystemScheduler(LIBRARY).schedule(system, assignment, periods)
    design = build_rtl(result)
    design.consistency_check()
    issued = sum(len(ctrl.issues) for ctrl in design.controllers)
    assert issued == system.operation_count
