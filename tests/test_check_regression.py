"""Tests for the CI bench-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)
spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def _scaling_row(processes=2, evals=1000, wall=1.0):
    return {
        "processes": processes,
        "area": 10.0,
        "iterations": 100,
        "cached": {"force_evaluations": evals, "wall_time": wall * 0.5},
        "uncached": {"force_evaluations": evals * 3, "wall_time": wall},
    }


def _sweep_report(evaluated=10, pruned_wall=0.5):
    return {
        "candidates": 16,
        "best_area": 6.0,
        "serial": {"failed": 0, "wall_time": 1.0},
        "parallel": {"failed": 0, "wall_time": 1.0},
        "parallel_pruned": {
            "failed": 0,
            "evaluated": evaluated,
            "wall_time": pruned_wall,
        },
    }


def _kernel_report(vector=0.1, kernel_wall=0.5):
    return {
        "kernels": [
            {
                "name": "modulo_max",
                "processes": 6,
                "batch": 100,
                "loops": 20,
                "scalar_seconds": 1.0,
                "vector_seconds": vector,
                "speedup": 1.0 / vector,
            },
        ],
        "end_to_end": [
            {
                "processes": 6,
                "kernel": {
                    "area": 10.0,
                    "iterations": 100,
                    "force_evaluations": 1000,
                    "wall_time": kernel_wall,
                },
                "scalar": {
                    "area": 10.0,
                    "iterations": 100,
                    "force_evaluations": 1000,
                    "wall_time": 1.0,
                },
                "speedup": 1.0 / kernel_wall,
            },
        ],
    }


def _absint_report(evaluated=7, pruned=66, interval_wall=0.3):
    return {
        "workload": {"system": "paper", "candidates": 73, "global_types": 3},
        "tightness": {
            "candidates": 73,
            "strictly_tighter": 61,
            "mean_averaging_bound": 12.4,
            "mean_interval_bound": 17.6,
            "max_gain": 15.0,
        },
        "sweep": {
            "candidates": 73,
            "best_area": 13.0,
            "averaging": {
                "evaluated": 43,
                "pruned": 30,
                "failed": 0,
                "wall_time": 2.0,
            },
            "interval": {
                "evaluated": evaluated,
                "pruned": pruned,
                "failed": 0,
                "wall_time": interval_wall,
            },
            "prune_rate_interval": pruned / 73,
            "prune_rate_floor": 81 / 125,
            "best_area_identical": True,
        },
        "fastpath": {
            "subjects": [
                {
                    "name": "paper",
                    "types": 3,
                    "interval_proofs": 3,
                    "checker_ok": True,
                },
            ],
            "proofs": 3,
            "interval_proofs": 3,
            "hit_rate": 1.0,
        },
    }


def _run(tmp_path, kind, current, baseline, *extra):
    cur = tmp_path / "current.json"
    base = tmp_path / "baseline.json"
    cur.write_text(json.dumps(current), encoding="utf-8")
    base.write_text(json.dumps(baseline), encoding="utf-8")
    return check_regression.main(
        ["--kind", kind, "--current", str(cur), "--baseline", str(base), *extra]
    )


class TestScalingGate:
    def test_identical_run_passes(self, tmp_path, capsys):
        assert _run(tmp_path, "scaling", [_scaling_row()], [_scaling_row()]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_eval_count_regression_fails(self, tmp_path, capsys):
        current = [_scaling_row(evals=1300)]  # +30% > 25% tolerance
        assert _run(tmp_path, "scaling", current, [_scaling_row()]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_growth_within_tolerance_passes(self, tmp_path, capsys):
        current = [_scaling_row(evals=1200)]  # +20% < 25% tolerance
        assert _run(tmp_path, "scaling", current, [_scaling_row()]) == 0
        capsys.readouterr()

    def test_wall_ratio_regression_fails(self, tmp_path, capsys):
        current = [_scaling_row()]
        current[0]["cached"]["wall_time"] = 0.9  # ratio 0.9 vs baseline 0.5
        assert _run(tmp_path, "scaling", current, [_scaling_row()]) == 1
        assert "wall-time ratio" in capsys.readouterr().out

    def test_area_regression_fails_without_tolerance(self, tmp_path, capsys):
        current = [_scaling_row()]
        current[0]["area"] = 11.0
        assert _run(tmp_path, "scaling", current, [_scaling_row()]) == 1
        capsys.readouterr()

    def test_unmatched_rows_are_skipped_not_failed(self, tmp_path, capsys):
        current = [_scaling_row(processes=2), _scaling_row(processes=4)]
        assert _run(tmp_path, "scaling", current, [_scaling_row(processes=2)]) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_no_matched_rows_fails(self, tmp_path, capsys):
        current = [_scaling_row(processes=8)]
        assert _run(tmp_path, "scaling", current, [_scaling_row(processes=2)]) == 1
        capsys.readouterr()


class TestSweepGate:
    def test_identical_run_passes(self, tmp_path, capsys):
        assert _run(tmp_path, "sweep", _sweep_report(), _sweep_report()) == 0
        capsys.readouterr()

    def test_pruning_erosion_fails(self, tmp_path, capsys):
        current = _sweep_report(evaluated=14)  # +40% more work
        assert _run(tmp_path, "sweep", current, _sweep_report()) == 1
        capsys.readouterr()

    def test_failed_jobs_fail_the_gate(self, tmp_path, capsys):
        current = _sweep_report()
        current["parallel"]["failed"] = 1
        assert _run(tmp_path, "sweep", current, _sweep_report()) == 1
        capsys.readouterr()

    def test_candidate_set_mismatch_demands_new_baseline(self, tmp_path, capsys):
        current = _sweep_report()
        current["candidates"] = 99
        assert _run(tmp_path, "sweep", current, _sweep_report()) == 1
        assert "regenerate the baseline" in capsys.readouterr().out

    def test_noise_floor_skips_tiny_wall_times(self, tmp_path, capsys):
        current = _sweep_report(pruned_wall=0.04)
        current["parallel"]["wall_time"] = 0.04
        baseline = _sweep_report(pruned_wall=0.01)
        baseline["parallel"]["wall_time"] = 0.04
        assert _run(tmp_path, "sweep", current, baseline) == 0
        assert "noise floor" in capsys.readouterr().out

    def test_custom_tolerance(self, tmp_path, capsys):
        current = _sweep_report(evaluated=11)  # +10%
        assert (
            _run(
                tmp_path, "sweep", current, _sweep_report(),
                "--tolerance", "0.05",
            )
            == 1
        )
        capsys.readouterr()


class TestKernelsGate:
    def test_identical_run_passes(self, tmp_path, capsys):
        assert _run(tmp_path, "kernels", _kernel_report(), _kernel_report()) == 0
        assert "no regression" in capsys.readouterr().out

    def test_vector_slowdown_fails(self, tmp_path, capsys):
        current = _kernel_report(vector=0.2)  # ratio doubled vs baseline
        assert _run(tmp_path, "kernels", current, _kernel_report()) == 1
        assert "vector/scalar" in capsys.readouterr().out

    def test_end_to_end_slowdown_fails(self, tmp_path, capsys):
        current = _kernel_report(kernel_wall=0.9)
        assert _run(tmp_path, "kernels", current, _kernel_report()) == 1
        assert "kernel/scalar" in capsys.readouterr().out

    def test_eval_count_regression_fails(self, tmp_path, capsys):
        current = _kernel_report()
        current["end_to_end"][0]["kernel"]["force_evaluations"] = 1300
        assert _run(tmp_path, "kernels", current, _kernel_report()) == 1
        capsys.readouterr()

    def test_workload_mismatch_demands_new_baseline(self, tmp_path, capsys):
        current = _kernel_report()
        current["kernels"][0]["batch"] = 999
        assert _run(tmp_path, "kernels", current, _kernel_report()) == 1
        assert "regenerate the baseline" in capsys.readouterr().out

    def test_unmatched_rows_are_skipped_not_failed(self, tmp_path, capsys):
        current = _kernel_report()
        current["kernels"].append(dict(current["kernels"][0], processes=12))
        current["end_to_end"].append(
            dict(current["end_to_end"][0], processes=12)
        )
        assert _run(tmp_path, "kernels", current, _kernel_report()) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_no_matched_rows_fails(self, tmp_path, capsys):
        current = _kernel_report()
        current["kernels"][0]["processes"] = 12
        current["end_to_end"][0]["processes"] = 12
        assert _run(tmp_path, "kernels", current, _kernel_report()) == 1
        capsys.readouterr()


class TestAbsintGate:
    def test_identical_run_passes(self, tmp_path, capsys):
        assert _run(tmp_path, "absint", _absint_report(), _absint_report()) == 0
        assert "no regression" in capsys.readouterr().out

    def test_pruning_erosion_fails(self, tmp_path, capsys):
        current = _absint_report(evaluated=10)  # +40% more work
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        capsys.readouterr()

    def test_prune_rate_floor_is_hard(self, tmp_path, capsys):
        current = _absint_report(pruned=40)  # 55% < 65% floor
        current["sweep"]["prune_rate_interval"] = 40 / 73
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        assert "floor" in capsys.readouterr().out

    def test_arm_parity_is_hard(self, tmp_path, capsys):
        current = _absint_report()
        current["sweep"]["best_area_identical"] = False
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        assert "identical best areas" in capsys.readouterr().out

    def test_checker_rejection_is_hard(self, tmp_path, capsys):
        current = _absint_report()
        current["fastpath"]["subjects"][0]["checker_ok"] = False
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        assert "rejected by the independent checker" in capsys.readouterr().out

    def test_tightness_loss_fails_without_tolerance(self, tmp_path, capsys):
        current = _absint_report()
        current["tightness"]["strictly_tighter"] = 60
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        capsys.readouterr()

    def test_fastpath_loss_fails_without_tolerance(self, tmp_path, capsys):
        current = _absint_report()
        current["fastpath"]["interval_proofs"] = 2
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        capsys.readouterr()

    def test_wall_ratio_regression_fails(self, tmp_path, capsys):
        current = _absint_report(interval_wall=1.0)  # ratio 0.5 vs 0.15
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        assert "interval/averaging" in capsys.readouterr().out

    def test_candidate_set_mismatch_demands_new_baseline(self, tmp_path, capsys):
        current = _absint_report()
        current["workload"]["candidates"] = 99
        assert _run(tmp_path, "absint", current, _absint_report()) == 1
        assert "regenerate the baseline" in capsys.readouterr().out


class TestCommittedBaselines:
    @pytest.mark.parametrize("name", [
        "BENCH_scaling_smoke.json",
        "BENCH_sweep_smoke.json",
        "BENCH_kernel_smoke.json",
        "BENCH_scale_smoke.json",
        "BENCH_service_smoke.json",
        "BENCH_absint_smoke.json",
    ])
    def test_baseline_files_parse(self, name):
        path = _MODULE_PATH.parent / "baselines" / name
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data
