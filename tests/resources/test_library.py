"""Tests for repro.resources.library."""

import pytest

from repro.errors import ResourceError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind, Operation
from repro.resources.library import ResourceLibrary, alu_library, default_library
from repro.resources.types import resource_type


class TestResourceLibrary:
    def test_add_and_lookup(self):
        lib = ResourceLibrary()
        adder = lib.add(resource_type("adder", [OpKind.ADD]))
        assert lib.type("adder") is adder
        assert "adder" in lib
        assert len(lib) == 1

    def test_duplicate_name_rejected(self):
        lib = ResourceLibrary([resource_type("adder", [OpKind.ADD])])
        with pytest.raises(ResourceError, match="duplicate"):
            lib.add(resource_type("adder", [OpKind.SUB]))

    def test_conflicting_kind_rejected(self):
        lib = ResourceLibrary([resource_type("adder", [OpKind.ADD])])
        with pytest.raises(ResourceError, match="already served"):
            lib.add(resource_type("alu", [OpKind.ADD, OpKind.SUB]))

    def test_unknown_type_lookup(self):
        with pytest.raises(ResourceError, match="no resource type"):
            ResourceLibrary().type("zz")

    def test_type_for_kind(self):
        lib = default_library()
        assert lib.type_for(OpKind.MUL).name == "multiplier"
        with pytest.raises(ResourceError, match="executes"):
            lib.type_for(OpKind.DIV)

    def test_latency_and_occupancy_of_operation(self):
        lib = default_library()
        mul = Operation("m", OpKind.MUL)
        add = Operation("a", OpKind.ADD)
        assert lib.latency_of(mul) == 2
        assert lib.occupancy_of(mul) == 1  # pipelined
        assert lib.latency_of(add) == 1
        assert lib.occupancy_of(add) == 1

    def test_types_used_by_graph(self):
        lib = default_library()
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("a2", OpKind.ADD)
        names = [t.name for t in lib.types_used_by(graph)]
        assert names == ["adder", "multiplier"]


class TestDefaultLibrary:
    def test_paper_parameters(self):
        lib = default_library()
        assert lib.type("adder").latency == 1
        assert lib.type("adder").area == 1.0
        assert lib.type("subtracter").latency == 1
        mult = lib.type("multiplier")
        assert mult.latency == 2
        assert mult.pipelined
        assert mult.area == 4.0

    def test_covers_add_sub_mul_cmp(self):
        lib = default_library()
        for kind in (OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.CMP):
            lib.type_for(kind)


class TestAluLibrary:
    def test_alu_serves_three_kinds(self):
        lib = alu_library()
        assert lib.type_for(OpKind.ADD).name == "alu"
        assert lib.type_for(OpKind.SUB).name == "alu"
        assert lib.type_for(OpKind.CMP).name == "alu"
        assert lib.type_for(OpKind.MUL).name == "multiplier"
