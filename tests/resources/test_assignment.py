"""Tests for repro.resources.assignment (step S1)."""

import pytest

from repro.errors import ResourceError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def system_with_kinds(kind_map):
    """kind_map: process name -> list of kinds used."""
    system = SystemSpec(name="s")
    for name, kinds in kind_map.items():
        graph = DataFlowGraph(name=f"{name}-g")
        for i, kind in enumerate(kinds):
            graph.add(f"n{i}", kind)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=8))
        system.add_process(process)
    return system


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def system():
    return system_with_kinds(
        {
            "p1": [OpKind.ADD, OpKind.MUL],
            "p2": [OpKind.ADD, OpKind.MUL],
            "p3": [OpKind.ADD],
        }
    )


class TestDeclaration:
    def test_default_everything_local(self, library):
        assignment = ResourceAssignment(library)
        assert assignment.global_types == []
        assert not assignment.is_global("adder")

    def test_make_global(self, library):
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        assert assignment.is_global("adder")
        assert assignment.group("adder") == ["p1", "p2"]

    def test_group_of_one_rejected(self, library):
        assignment = ResourceAssignment(library)
        with pytest.raises(ResourceError, match=">= 2"):
            assignment.make_global("adder", ["p1"])

    def test_duplicate_group_members_deduplicated(self, library):
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2", "p1"])
        assert assignment.group("adder") == ["p1", "p2"]

    def test_unknown_type_rejected(self, library):
        assignment = ResourceAssignment(library)
        with pytest.raises(ResourceError, match="no resource type"):
            assignment.make_global("zz", ["p1", "p2"])

    def test_make_local_reverts(self, library):
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        assignment.make_local("adder")
        assert not assignment.is_global("adder")


class TestQueries:
    def test_global_types_of_process(self, library):
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        assignment.make_global("multiplier", ["p1", "p3"])
        assert assignment.global_types_of("p1") == ["adder", "multiplier"]
        assert assignment.global_types_of("p2") == ["adder"]
        assert assignment.global_types_of("p4") == []

    def test_shares_globally(self, library):
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        assert assignment.shares_globally("adder", "p1")
        assert not assignment.shares_globally("adder", "p3")
        assert not assignment.shares_globally("multiplier", "p1")

    def test_users(self, library, system):
        assignment = ResourceAssignment(library)
        assert assignment.users(system, "adder") == ["p1", "p2", "p3"]
        assert assignment.users(system, "multiplier") == ["p1", "p2"]


class TestValidation:
    def test_valid_assignment_passes(self, library, system):
        assignment = ResourceAssignment(library)
        assignment.make_global("multiplier", ["p1", "p2"])
        assignment.validate(system)

    def test_unknown_process_in_group(self, library, system):
        assignment = ResourceAssignment(library)
        assignment.make_global("multiplier", ["p1", "zz"])
        with pytest.raises(ResourceError, match="unknown process"):
            assignment.validate(system)

    def test_non_user_in_group(self, library, system):
        assignment = ResourceAssignment(library)
        assignment.make_global("multiplier", ["p1", "p3"])  # p3 has no MUL
        with pytest.raises(ResourceError, match="no operation"):
            assignment.validate(system)


class TestFactories:
    def test_all_local(self, library):
        assert ResourceAssignment.all_local(library).global_types == []

    def test_all_global_groups_every_shared_type(self, library, system):
        assignment = ResourceAssignment.all_global(library, system)
        assert assignment.group("adder") == ["p1", "p2", "p3"]
        assert assignment.group("multiplier") == ["p1", "p2"]
        # Subtracter used by nobody: stays local.
        assert not assignment.is_global("subtracter")
        assignment.validate(system)
