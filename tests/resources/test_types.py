"""Tests for repro.resources.types."""

import pytest

from repro.errors import ResourceError
from repro.ir.operation import OpKind
from repro.resources.types import ResourceType, resource_type


class TestResourceType:
    def test_basic_adder(self):
        adder = resource_type("adder", [OpKind.ADD])
        assert adder.latency == 1
        assert adder.occupancy == 1
        assert adder.executes(OpKind.ADD)
        assert not adder.executes(OpKind.MUL)

    def test_pipelined_occupancy_is_initiation_interval(self):
        mult = resource_type(
            "mult", [OpKind.MUL], latency=2, pipelined=True, initiation_interval=1
        )
        assert mult.latency == 2
        assert mult.occupancy == 1

    def test_multicycle_nonpipelined_occupancy_is_latency(self):
        mult = resource_type("mult", [OpKind.MUL], latency=3)
        assert mult.occupancy == 3

    def test_multi_kind_unit(self):
        alu = resource_type("alu", [OpKind.ADD, OpKind.SUB])
        assert alu.executes(OpKind.ADD)
        assert alu.executes(OpKind.SUB)

    def test_empty_name_rejected(self):
        with pytest.raises(ResourceError, match="name"):
            resource_type("", [OpKind.ADD])

    def test_no_kinds_rejected(self):
        with pytest.raises(ResourceError, match="no operation kinds"):
            resource_type("x", [])

    def test_zero_latency_rejected(self):
        with pytest.raises(ResourceError, match="latency"):
            resource_type("x", [OpKind.ADD], latency=0)

    def test_negative_area_rejected(self):
        with pytest.raises(ResourceError, match="area"):
            resource_type("x", [OpKind.ADD], area=-1)

    def test_ii_exceeding_latency_rejected_when_pipelined(self):
        with pytest.raises(ResourceError, match="initiation interval"):
            resource_type(
                "x", [OpKind.MUL], latency=2, pipelined=True, initiation_interval=3
            )

    def test_zero_ii_rejected(self):
        with pytest.raises(ResourceError, match="initiation interval"):
            resource_type("x", [OpKind.MUL], initiation_interval=0)

    def test_frozen(self):
        adder = resource_type("adder", [OpKind.ADD])
        with pytest.raises(AttributeError):
            adder.latency = 2

    def test_str_is_name(self):
        assert str(resource_type("adder", [OpKind.ADD])) == "adder"
