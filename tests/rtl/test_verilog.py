"""Tests for the HDL text emission."""

import pytest

from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.rtl.design import build_rtl
from repro.rtl.verilog import emit_verilog
from repro.workloads import paper_assignment, paper_periods, paper_system


@pytest.fixture(scope="module")
def design():
    library = default_library()
    system = SystemSpec(name="hdl-demo")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a0", OpKind.ADD)
        graph.add("m0", OpKind.MUL)
        graph.add_edge("a0", "m0")
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=6))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("multiplier", ["p1", "p2"])
    result = ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"multiplier": 3})
    )
    return build_rtl(result)


class TestEmitVerilog:
    def test_controller_modules_present(self, design):
        text = emit_verilog(design)
        assert "module p1_main_ctrl (" in text
        assert "module p2_main_ctrl (" in text
        assert "module hdl_demo_top (" in text

    def test_operations_appear_as_issue_comments(self, design):
        text = emit_verilog(design)
        assert "// a0:" in text
        assert "// m0:" in text

    def test_units_instantiated(self, design):
        text = emit_verilog(design)
        assert "multiplier multiplier_g0 ();  // shared" in text
        assert "adder p1_adder_0 ();  // local to p1" in text

    def test_authorization_rom_emitted(self, design):
        text = emit_verilog(design)
        assert "AUTH_MULTIPLIER_P1" in text
        assert "no runtime executive" in text

    def test_grid_comment_on_controllers(self, design):
        assert "grid spacing 3" in emit_verilog(design)

    def test_balanced_module_endmodule(self, design):
        text = emit_verilog(design)
        assert text.count("module ") - text.count("endmodule") == 0

    def test_paper_system_emits(self):
        system, library = paper_system()
        result = ModuloSystemScheduler(library).schedule(
            system, paper_assignment(library), paper_periods()
        )
        text = emit_verilog(build_rtl(result))
        # One controller per process plus top.
        assert text.count("endmodule") == 6
        assert "AUTH_SUBTRACTER_P4" in text
