"""Tests for the RTL design derivation."""

import pytest

from repro.errors import BindingError
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.rtl.design import IssueSpec, build_rtl


def shared_result():
    library = default_library()
    system = SystemSpec(name="rtl-demo")
    for name, n_ops in (("p1", 2), ("p2", 1)):
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_ops):
            graph.add(f"m{i}", OpKind.MUL)
        graph.add("a0", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=6))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("multiplier", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"multiplier": 3})
    )


class TestBuildRtl:
    def test_units_cover_all_instances(self):
        result = shared_result()
        design = build_rtl(result)
        global_mults = [
            u for u in design.units if u.type_name == "multiplier" and u.scope == "global"
        ]
        assert len(global_mults) == result.global_instances("multiplier")
        for process in ("p1", "p2"):
            locals_ = [
                u for u in design.units
                if u.type_name == "adder" and u.scope == process
            ]
            assert len(locals_) == result.local_instances(process, "adder")

    def test_one_controller_per_block(self):
        design = build_rtl(shared_result())
        assert len(design.controllers) == 2
        ctrl = design.controller("p1", "main")
        assert ctrl.n_states == 6
        assert ctrl.name == "p1_main_ctrl"

    def test_every_operation_issued_once(self):
        result = shared_result()
        design = build_rtl(result)
        for (process, block), sched in result.block_schedules.items():
            ctrl = design.controller(process, block)
            issued = sorted(issue.op_id for issue in ctrl.issues)
            assert issued == sorted(sched.graph.op_ids)
            for issue in ctrl.issues:
                assert issue.state == sched.start(issue.op_id)

    def test_authorization_roms_match_result(self):
        result = shared_result()
        design = build_rtl(result)
        period, grants = design.authorization_roms["multiplier"]
        assert period == 3
        for process in ("p1", "p2"):
            assert grants[process] == result.authorization(
                process, "multiplier"
            ).tolist()

    def test_consistency_check_passes(self):
        build_rtl(shared_result()).consistency_check()

    def test_unknown_unit_detected(self):
        design = build_rtl(shared_result())
        ctrl = design.controllers[0]
        ctrl.issues.append(
            IssueSpec(state=0, op_id="zz", op_label="zz", unit="ghost_0")
        )
        with pytest.raises(BindingError, match="unknown unit"):
            design.consistency_check()

    def test_double_issue_detected(self):
        design = build_rtl(shared_result())
        ctrl = design.controllers[0]
        first = ctrl.issues[0]
        ctrl.issues.append(
            IssueSpec(
                state=first.state, op_id="dup", op_label="dup", unit=first.unit
            )
        )
        with pytest.raises(BindingError, match="issued to both"):
            design.consistency_check()

    def test_unauthorized_global_issue_detected(self):
        design = build_rtl(shared_result())
        period, grants = design.authorization_roms["multiplier"]
        # Find a slot where p1 has no grant and forge an issue there.
        ctrl = design.controller("p1", "main")
        empty = next(
            (tau for tau in range(period) if grants["p1"][tau] == 0), None
        )
        if empty is None:
            pytest.skip("p1 is authorized everywhere in this schedule")
        ctrl.issues.append(
            IssueSpec(
                state=empty, op_id="rogue", op_label="rogue", unit="multiplier_g0"
            )
        )
        with pytest.raises(BindingError, match="authorized range"):
            design.consistency_check()

    def test_stats(self):
        design = build_rtl(shared_result())
        stats = design.stats()
        assert stats["controllers"] == 2
        assert stats["issues"] == 5
        assert stats["rom_bits"] > 0
