"""Smoke tests for the shipped examples and the sample .sys problem."""

import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "access authorizations" in out
        assert "saves" in out

    def test_hdl_generation(self):
        out = run_example("hdl_generation.py")
        assert "RTL design:" in out
        assert "AUTH_MULTIPLIER" in out

    def test_reactive_loops(self):
        out = run_example("reactive_loops.py")
        assert "-> ok" in out
        assert "VIOLATIONS" not in out


class TestSampleSysFile:
    def test_diffeq_pair_problem(self):
        from repro.api import load_problem

        problem = load_problem(EXAMPLES / "diffeq_pair.sys")
        assert problem.system.operation_count == 22
        result = problem.schedule()
        counts = result.instance_counts()
        # One of everything: the pair fully shares the datapath.
        assert counts == {"adder": 1, "subtracter": 1, "multiplier": 1}

    def test_diffeq_pair_statements_match_benchmark_graph(self):
        from repro.api import load_problem
        from repro.ir.operation import OpKind

        problem = load_problem(EXAMPLES / "diffeq_pair.sys")
        graph = problem.system.process("euler_a").block("step").graph
        counts = graph.count_by_kind()
        assert counts[OpKind.MUL] == 6
        assert counts[OpKind.ADD] == 2
        assert counts[OpKind.SUB] == 3
