"""Tests for the Problem API (repro.api)."""

import pytest

from repro.api import Problem, load_problem, loads_problem, problem_from_document
from repro.errors import SpecificationError
from repro.ir import systemio

TEXT = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
global multiplier p1 p2
period multiplier 4
"""


class TestLoadsProblem:
    def test_builds_live_objects(self):
        problem = loads_problem(TEXT)
        assert problem.system.name == "demo"
        assert problem.assignment.is_global("multiplier")
        assert problem.periods.period("multiplier") == 4
        problem.validate()

    def test_default_library_when_no_resources(self):
        problem = loads_problem(TEXT)
        assert "multiplier" in problem.library
        assert problem.library.type("multiplier").pipelined

    def test_custom_resources(self):
        text = "resource fancy kinds=add,mul latency=3 area=9\n" + TEXT.replace(
            "global multiplier p1 p2\nperiod multiplier 4",
            "global fancy p1 p2\nperiod fancy 4",
        )
        problem = loads_problem(text)
        assert problem.library.type("fancy").latency == 3
        assert not problem.library.type("fancy").pipelined

    def test_missing_period_gets_heuristic(self):
        text = TEXT.replace("period multiplier 4\n", "")
        problem = loads_problem(text)
        # min-deadline heuristic: min block deadline of the group = 8.
        assert problem.periods.period("multiplier") == 8

    def test_period_for_local_type_rejected(self):
        text = TEXT + "period adder 4\n"
        with pytest.raises(SpecificationError, match="non-global"):
            loads_problem(text)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "p.sys"
        path.write_text(TEXT, encoding="utf-8")
        problem = load_problem(path)
        assert problem.system.operation_count == 3


class TestProblemScheduling:
    def test_schedule_global(self):
        result = loads_problem(TEXT).schedule()
        assert result.global_instances("multiplier") == 1
        result.validate()

    def test_schedule_local_baseline(self):
        problem = loads_problem(TEXT)
        local = problem.schedule_local_baseline()
        assert local.assignment.global_types == []
        assert local.instance_counts()["multiplier"] == 2

    def test_scheduler_kwargs_forwarded(self):
        result = loads_problem(TEXT).schedule(periodical_alignment=False)
        result.validate()
