"""Tests for repro.ir.textio (text serialization)."""

import pytest

from repro.errors import GraphError
from repro.ir import textio
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind


def sample_graph():
    graph = DataFlowGraph(name="sample")
    graph.add("a", OpKind.ADD)
    graph.add("m", OpKind.MUL, name="3*x")
    graph.add_edge("a", "m")
    return graph


class TestDumps:
    def test_dumps_contains_directives(self):
        text = textio.dumps(sample_graph())
        assert "dfg sample" in text
        assert "op a add" in text
        assert "op m mul 3*x" in text
        assert "edge a m" in text


class TestLoads:
    def test_round_trip(self):
        original = sample_graph()
        loaded = textio.loads(textio.dumps(original))
        assert loaded.name == original.name
        assert loaded.op_ids == original.op_ids
        assert loaded.edges == original.edges
        assert loaded.operation("m").name == "3*x"
        assert loaded.operation("m").kind is OpKind.MUL

    def test_symbols_accepted_as_kinds(self):
        graph = textio.loads("op a +\nop m *\nedge a m\n")
        assert graph.operation("a").kind is OpKind.ADD
        assert graph.operation("m").kind is OpKind.MUL

    def test_comments_and_blank_lines_ignored(self):
        graph = textio.loads("# header\n\nop a add  # trailing\n")
        assert graph.op_ids == ["a"]

    def test_unknown_directive_rejected(self):
        with pytest.raises(GraphError, match="unknown directive"):
            textio.loads("frob a b\n")

    def test_bad_op_arity_rejected(self):
        with pytest.raises(GraphError, match="'op' takes"):
            textio.loads("op a\n")

    def test_bad_edge_arity_rejected(self):
        with pytest.raises(GraphError, match="'edge' takes"):
            textio.loads("op a add\nedge a\n")

    def test_unknown_kind_rejected_with_line_number(self):
        with pytest.raises(GraphError, match="line 1"):
            textio.loads("op a frob\n")

    def test_cyclic_input_rejected(self):
        text = "op a add\nop b add\nedge a b\nedge b a\n"
        with pytest.raises(GraphError, match="cycle"):
            textio.loads(text)

    def test_first_dfg_name_wins(self):
        graph = textio.loads("dfg first\ndfg second\nop a add\n")
        assert graph.name == "first"


class TestFileRoundTrip:
    def test_dump_and_load(self, tmp_path):
        path = tmp_path / "g.dfg"
        textio.dump(sample_graph(), path)
        loaded = textio.load(path)
        assert loaded.op_ids == ["a", "m"]
