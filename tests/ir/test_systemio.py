"""Tests for the .sys system-specification text format."""

import pytest

from repro.errors import SpecificationError
from repro.ir import systemio
from repro.ir.operation import OpKind

VALID = """\
system demo
resource adder kinds=add latency=1 area=1
resource mult kinds=mul latency=2 area=4 pipelined ii=1
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul widget
edge p1 main a1 m1
process p2
block p2 loop deadline=6 repeats
op p2 loop m1 mul
global mult p1 p2
period mult 4
"""


class TestLoads:
    def test_full_document(self):
        doc = systemio.loads(VALID)
        assert doc.name == "demo"
        assert set(doc.resources) == {"adder", "mult"}
        assert doc.resources["mult"]["pipelined"] is True
        assert doc.resources["mult"]["latency"] == 2
        assert doc.process_order == ["p1", "p2"]
        assert doc.globals == {"mult": ["p1", "p2"]}
        assert doc.periods == {"mult": 4}

    def test_build_system(self):
        system = systemio.loads(VALID).build_system()
        assert system.name == "demo"
        assert system.process("p1").block("main").deadline == 8
        assert system.process("p2").block("loop").repeats
        graph = system.process("p1").block("main").graph
        assert graph.operation("m1").kind is OpKind.MUL
        assert graph.operation("m1").name == "widget"
        assert graph.edges == [("a1", "m1")]

    def test_comments_and_blanks(self):
        doc = systemio.loads("# hi\n\nsystem x\nprocess p\nblock p b deadline=2\nop p b a add\n")
        assert doc.name == "x"

    def test_unknown_directive(self):
        with pytest.raises(SpecificationError, match="line 1"):
            systemio.loads("frobnicate\n")

    def test_op_before_block(self):
        with pytest.raises(SpecificationError, match="unknown block"):
            systemio.loads("process p\nop p b a add\n")

    def test_block_before_process(self):
        with pytest.raises(SpecificationError, match="unknown process"):
            systemio.loads("block p b deadline=4\n")

    def test_block_requires_deadline(self):
        with pytest.raises(SpecificationError, match="deadline"):
            systemio.loads("process p\nblock p b\n")

    def test_duplicate_process(self):
        with pytest.raises(SpecificationError, match="duplicate process"):
            systemio.loads("process p\nprocess p\n")

    def test_resource_without_kinds(self):
        with pytest.raises(SpecificationError, match="no kinds"):
            systemio.loads("resource x latency=1\n")

    def test_bad_resource_option(self):
        with pytest.raises(SpecificationError, match="unknown resource option"):
            systemio.loads("resource x kinds=add voltage=5\n")

    def test_global_needs_two_processes(self):
        with pytest.raises(SpecificationError, match="'global' takes"):
            systemio.loads("global mult p1\n")


class TestRoundTrip:
    def test_dumps_loads_round_trip(self):
        doc = systemio.loads(VALID)
        system = doc.build_system()
        text = systemio.dumps(
            system,
            resources=doc.resources,
            global_groups=doc.globals,
            periods=doc.periods,
        )
        doc2 = systemio.loads(text)
        assert doc2.name == doc.name
        assert doc2.globals == doc.globals
        assert doc2.periods == doc.periods
        system2 = doc2.build_system()
        for process in system.processes:
            for block in process.blocks:
                other = system2.process(process.name).block(block.name)
                assert other.deadline == block.deadline
                assert other.repeats == block.repeats
                assert other.graph.op_ids == block.graph.op_ids
                assert other.graph.edges == block.graph.edges

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "demo.sys"
        path.write_text(VALID, encoding="utf-8")
        doc = systemio.load(path)
        assert doc.name == "demo"

    def test_dump_writes_loadable_file(self, tmp_path):
        doc = systemio.loads(VALID)
        system = doc.build_system()
        path = tmp_path / "out.sys"
        systemio.dump(
            path,
            system,
            resources=doc.resources,
            global_groups=doc.globals,
            periods=doc.periods,
        )
        doc2 = systemio.load(path)
        assert doc2.name == doc.name
        assert doc2.periods == doc.periods

    def test_hash_in_op_id_survives_round_trip(self):
        # The behavioral front end names generated ops 'target#N'; a '#'
        # inside a token is data, only whitespace-preceded '#' comments.
        text = (
            "system hashy\n"
            "process p  # trailing comment still works\n"
            "block p b deadline=4\n"
            "op p b t#1 add\n"
            "op p b t#2 add\n"
            "edge p b t#1 t#2\n"
        )
        doc = systemio.loads(text)
        system = doc.build_system()
        graph = system.process("p").block("b").graph
        assert set(graph.op_ids) == {"t#1", "t#2"}
        text2 = systemio.dumps(system)
        system2 = systemio.loads(text2).build_system()
        assert set(system2.process("p").block("b").graph.op_ids) == {
            "t#1",
            "t#2",
        }

    def test_behavioral_problem_round_trips(self):
        # stmt-compiled ops (ids with '#') must survive dumps_problem.
        from repro.api import dumps_problem, loads_problem

        text = (
            "system behav\n"
            "process p\n"
            "block p b deadline=8\n"
            "stmt p b y = a * b + c\n"
            "process q\n"
            "block q b deadline=8\n"
            "stmt q b z = d * e\n"
            "global multiplier p q\n"
            "period multiplier 4\n"
        )
        problem = loads_problem(text)
        clone = loads_problem(dumps_problem(problem))
        assert clone.periods.as_dict == problem.periods.as_dict
        result = problem.schedule()
        clone_result = clone.schedule()
        assert clone_result.total_area() == result.total_area()
        assert clone_result.iterations == result.iterations
