"""Tests for repro.ir.expr (expression-capture builder)."""

import pytest

from repro.errors import GraphError
from repro.ir.expr import ExprBuilder
from repro.ir.operation import OpKind


class TestExprBuilder:
    def test_single_addition(self):
        b = ExprBuilder("t")
        x, y = b.inputs("x", "y")
        __ = x + y
        graph = b.build()
        assert len(graph) == 1
        assert graph.operations[0].kind is OpKind.ADD

    def test_operator_kinds(self):
        b = ExprBuilder()
        x, y = b.inputs("x", "y")
        __ = x + y
        __ = x - y
        __ = x * y
        __ = x < y
        kinds = [op.kind for op in b.build()]
        assert kinds == [OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.CMP]

    def test_dependencies_create_edges(self):
        b = ExprBuilder()
        x, y = b.inputs("x", "y")
        s = x + y
        t = s * x
        graph = b.build()
        assert (s.producer, t.producer) in graph.edges

    def test_inputs_create_no_nodes(self):
        b = ExprBuilder()
        b.inputs("x", "y", "z")
        assert len(b.build()) == 0

    def test_constant_behaves_like_input(self):
        b = ExprBuilder()
        x = b.input("x")
        three = b.constant(3)
        p = three * x
        graph = b.build()
        assert graph.predecessors(p.producer) == []

    def test_shared_subexpression_fans_out(self):
        b = ExprBuilder()
        x, y = b.inputs("x", "y")
        s = x + y
        __ = s * x
        __ = s * y
        graph = b.build()
        assert len(graph.successors(s.producer)) == 2

    def test_diffeq_like_expression(self):
        b = ExprBuilder("diffeq")
        x, y, u, dx, three = b.inputs("x", "y", "u", "dx", "3")
        x1 = x + dx
        u1 = u - (three * x) * (u * dx) - (three * y) * dx
        b.output("x1", x1)
        b.output("u1", u1)
        graph = b.build()
        counts = graph.count_by_kind()
        assert counts[OpKind.MUL] == 5
        assert counts[OpKind.SUB] == 2
        assert counts[OpKind.ADD] == 1
        assert set(b.outputs) == {"x1", "u1"}

    def test_mixing_builders_rejected(self):
        b1, b2 = ExprBuilder(), ExprBuilder()
        x = b1.input("x")
        y = b2.input("y")
        with pytest.raises(GraphError, match="different builders"):
            __ = x + y

    def test_non_value_operand_rejected(self):
        b = ExprBuilder()
        x = b.input("x")
        with pytest.raises(TypeError, match="builder values"):
            __ = x + 3

    def test_build_finalizes(self):
        b = ExprBuilder()
        x, y = b.inputs("x", "y")
        __ = x + y
        b.build()
        with pytest.raises(GraphError, match="finalized"):
            __ = x * y

    def test_output_of_foreign_value_rejected(self):
        b1, b2 = ExprBuilder(), ExprBuilder()
        x = b1.input("x")
        with pytest.raises(GraphError, match="different builder"):
            b2.output("o", x)
