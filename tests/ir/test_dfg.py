"""Tests for repro.ir.dfg."""

import pytest

from repro.errors import GraphError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind, Operation


def build_chain(n=3, kind=OpKind.ADD):
    graph = DataFlowGraph(name="chain")
    for i in range(n):
        graph.add(f"n{i}", kind)
    for i in range(n - 1):
        graph.add_edge(f"n{i}", f"n{i + 1}")
    return graph


class TestConstruction:
    def test_add_operations_and_edges(self):
        graph = build_chain(3)
        assert len(graph) == 3
        assert graph.edges == [("n0", "n1"), ("n1", "n2")]

    def test_duplicate_id_rejected(self):
        graph = build_chain(2)
        with pytest.raises(GraphError, match="duplicate"):
            graph.add("n0", OpKind.ADD)

    def test_edge_with_unknown_source_rejected(self):
        graph = build_chain(2)
        with pytest.raises(GraphError, match="unknown source"):
            graph.add_edge("missing", "n0")

    def test_edge_with_unknown_destination_rejected(self):
        graph = build_chain(2)
        with pytest.raises(GraphError, match="unknown destination"):
            graph.add_edge("n0", "missing")

    def test_self_loop_rejected(self):
        graph = build_chain(2)
        with pytest.raises(GraphError, match="self-loop"):
            graph.add_edge("n0", "n0")

    def test_duplicate_edge_ignored(self):
        graph = build_chain(2)
        graph.add_edge("n0", "n1")
        assert graph.edges == [("n0", "n1")]

    def test_cycle_rejected_and_rolled_back(self):
        graph = build_chain(3)
        with pytest.raises(GraphError, match="cycle"):
            graph.add_edge("n2", "n0")
        # The offending edge must not remain.
        assert ("n2", "n0") not in graph.edges
        graph.validate()

    def test_add_operation_object(self):
        graph = DataFlowGraph()
        op = Operation("x", OpKind.MUL)
        assert graph.add_operation(op) is op
        assert graph.operation("x") is op


class TestQueries:
    def test_contains_and_lookup(self):
        graph = build_chain(2)
        assert "n0" in graph
        assert "zz" not in graph
        with pytest.raises(GraphError, match="unknown operation"):
            graph.operation("zz")

    def test_successors_predecessors(self):
        graph = build_chain(3)
        assert graph.successors("n0") == ["n1"]
        assert graph.predecessors("n2") == ["n1"]
        assert graph.predecessors("n0") == []

    def test_sources_and_sinks(self):
        graph = build_chain(3)
        assert graph.sources() == ["n0"]
        assert graph.sinks() == ["n2"]

    def test_count_by_kind(self):
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        assert graph.count_by_kind() == {OpKind.ADD: 2, OpKind.MUL: 1}

    def test_operations_of_kind(self):
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        assert [op.op_id for op in graph.operations_of_kind(OpKind.MUL)] == ["m"]

    def test_iteration_preserves_insertion_order(self):
        graph = DataFlowGraph()
        for oid in ("z", "a", "m"):
            graph.add(oid, OpKind.ADD)
        assert graph.op_ids == ["z", "a", "m"]


class TestTopologyAndPaths:
    def test_topological_order_respects_edges(self):
        graph = build_chain(4)
        order = graph.topological_order()
        assert order.index("n0") < order.index("n1") < order.index("n3")

    def test_topological_order_deterministic(self):
        graph = DataFlowGraph()
        for oid in ("b", "a", "c"):
            graph.add(oid, OpKind.ADD)
        assert graph.topological_order() == ["b", "a", "c"]

    def test_critical_path_unit_latency(self):
        graph = build_chain(5)
        assert graph.critical_path_length(lambda op: 1) == 5

    def test_critical_path_mixed_latency(self):
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("b", OpKind.ADD)
        graph.add_edges([("a", "m"), ("m", "b")])
        latency = {OpKind.ADD: 1, OpKind.MUL: 2}
        assert graph.critical_path_length(lambda op: latency[op.kind]) == 4

    def test_critical_path_of_parallel_ops(self):
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        assert graph.critical_path_length(lambda op: 1) == 1

    def test_subgraph_induces_edges(self):
        graph = build_chain(4)
        sub = graph.subgraph(["n1", "n2"])
        assert sub.op_ids == ["n1", "n2"]
        assert sub.edges == [("n1", "n2")]

    def test_subgraph_drops_external_edges(self):
        graph = build_chain(4)
        sub = graph.subgraph(["n0", "n2"])
        assert sub.edges == []

    def test_validate_passes_on_good_graph(self):
        build_chain(3).validate()

    def test_repr_mentions_counts(self):
        assert "ops=3" in repr(build_chain(3))
