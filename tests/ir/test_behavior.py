"""Tests for the behavioral front end."""

import pytest

from repro.errors import GraphError
from repro.ir.behavior import BehaviorParser, parse_behavior
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.resources.library import default_library


class TestStatements:
    def test_single_addition(self):
        graph = parse_behavior("y = a + b")
        assert len(graph) == 1
        op = graph.operations[0]
        assert op.kind is OpKind.ADD
        assert op.op_id == "y#1"

    def test_precedence_mul_over_add(self):
        graph = parse_behavior("y = a + b * c")
        kinds = [op.kind for op in graph]
        assert kinds == [OpKind.MUL, OpKind.ADD]
        mul, add = graph.op_ids
        assert (mul, add) in graph.edges

    def test_parentheses_override(self):
        graph = parse_behavior("y = (a + b) * c")
        kinds = [op.kind for op in graph]
        assert kinds == [OpKind.ADD, OpKind.MUL]

    def test_left_associative_subtraction(self):
        graph = parse_behavior("y = a - b - c")
        first, second = graph.op_ids
        assert (first, second) in graph.edges

    def test_comparison(self):
        graph = parse_behavior("flag = x < limit")
        assert graph.operations[0].kind is OpKind.CMP

    def test_numbers_are_free_inputs(self):
        graph = parse_behavior("y = 3 * x")
        assert len(graph) == 1
        assert graph.predecessors(graph.op_ids[0]) == []

    def test_cross_statement_dependence(self):
        graph = parse_behavior("t = a + b\ny = t * c")
        t_id, y_id = graph.op_ids
        assert (t_id, y_id) in graph.edges

    def test_diffeq_body(self):
        text = (
            "x1 = x + dx\n"
            "u1 = u - (3 * x) * (u * dx) - (3 * y) * dx\n"
            "y1 = y + u * dx\n"
            "c = x1 < a\n"
        )
        graph = parse_behavior(text, name="diffeq")
        counts = graph.count_by_kind()
        # No common-subexpression elimination: u*dx appears twice, like
        # the classic HAL graph's six multiplications.
        assert counts[OpKind.MUL] == 6
        assert counts[OpKind.SUB] == 2
        assert counts[OpKind.ADD] == 2
        assert counts[OpKind.CMP] == 1
        # It schedules with the default library.
        from repro.ir.process import Block
        from repro.scheduling.ifds import ImprovedForceDirectedScheduler

        library = default_library()
        deadline = graph.critical_path_length(library.latency_of) + 2
        schedule = ImprovedForceDirectedScheduler(library).schedule(
            Block(name="d", graph=graph, deadline=deadline)
        )
        schedule.validate()

    def test_comments_and_blank_lines(self):
        graph = parse_behavior("# header\n\ny = a + b  # trailing\n")
        assert len(graph) == 1

    def test_guarded_statements(self):
        graph = DataFlowGraph(name="g")
        parser = BehaviorParser(graph)
        parser.statement("t = a + b", guard=("mode", "fast"))
        parser.statement("e = a - b", guard=("mode", "slow"))
        ops = graph.operations
        assert ops[0].guard == ("mode", "fast")
        assert ops[1].guard == ("mode", "slow")
        assert ops[0].excludes(ops[1])


class TestErrors:
    def test_double_assignment_rejected(self):
        with pytest.raises(GraphError, match="assigned twice"):
            parse_behavior("y = a + b\ny = a - b")

    def test_pure_copy_rejected(self):
        with pytest.raises(GraphError, match="computes nothing"):
            parse_behavior("y = x")

    def test_constant_only_rejected(self):
        with pytest.raises(GraphError, match="computes nothing"):
            parse_behavior("y = 42")

    def test_missing_equals(self):
        with pytest.raises(GraphError, match="expected '='"):
            parse_behavior("y a + b")

    def test_missing_paren(self):
        with pytest.raises(GraphError, match="missing"):
            parse_behavior("y = (a + b")

    def test_garbage_rejected(self):
        with pytest.raises(GraphError, match="tokenize"):
            parse_behavior("y = a @ b")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(GraphError, match="trailing"):
            parse_behavior("y = a + b c")


class TestSystemioIntegration:
    def test_stmt_directive(self):
        from repro.ir import systemio

        text = (
            "process p1\n"
            "block p1 main deadline=10\n"
            "stmt p1 main t = a + b\n"
            "stmt p1 main y = t * c\n"
        )
        doc = systemio.loads(text)
        graph = doc.build_system().process("p1").block("main").graph
        assert len(graph) == 2
        assert ("t#1", "y#1") in graph.edges

    def test_stmt_with_guard(self):
        from repro.ir import systemio

        text = (
            "process p1\n"
            "block p1 main deadline=10\n"
            "stmt p1 main guard=mode:fast t = a + b\n"
        )
        doc = systemio.loads(text)
        graph = doc.build_system().process("p1").block("main").graph
        assert graph.operations[0].guard == ("mode", "fast")

    def test_stmt_mixed_with_op_directives(self):
        from repro.ir import systemio

        text = (
            "process p1\n"
            "block p1 main deadline=10\n"
            "op p1 main seed add\n"
            "stmt p1 main y = a * b\n"
        )
        graph = systemio.loads(text).build_system().process("p1").block("main").graph
        assert sorted(graph.op_ids) == ["seed", "y#1"]

    def test_stmt_error_carries_line_number(self):
        from repro.ir import systemio

        with pytest.raises(Exception, match="line 3"):
            systemio.loads(
                "process p1\nblock p1 main deadline=10\nstmt p1 main y = x\n"
            )

    def test_schedulable_end_to_end(self):
        from repro.api import loads_problem

        text = (
            "process p1\n"
            "block p1 main deadline=12\n"
            "stmt p1 main y = (a * x + b) * c\n"
            "process p2\n"
            "block p2 main deadline=12\n"
            "stmt p2 main z = p * q + r * s\n"
            "global multiplier p1 p2\n"
            "period multiplier 6\n"
        )
        problem = loads_problem(text)
        result = problem.schedule()
        assert result.global_instances("multiplier") >= 1
        result.validate()

    def test_stmt_consumes_op_directive_nodes(self):
        from repro.ir import systemio

        text = (
            "process p1\n"
            "block p1 main deadline=10\n"
            "op p1 main seed add\n"
            "stmt p1 main y = seed * gain\n"
        )
        graph = systemio.loads(text).build_system().process("p1").block("main").graph
        assert ("seed", "y#1") in graph.edges
