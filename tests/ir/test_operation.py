"""Tests for repro.ir.operation."""

import pytest

from repro.ir.operation import OpKind, Operation


class TestOpKind:
    def test_symbols_for_arithmetic_kinds(self):
        assert OpKind.ADD.symbol == "+"
        assert OpKind.SUB.symbol == "-"
        assert OpKind.MUL.symbol == "*"
        assert OpKind.CMP.symbol == "<"

    def test_from_string_accepts_value_names(self):
        assert OpKind.from_string("add") is OpKind.ADD
        assert OpKind.from_string("MUL") is OpKind.MUL
        assert OpKind.from_string("  sub ") is OpKind.SUB

    def test_from_string_accepts_symbols(self):
        assert OpKind.from_string("+") is OpKind.ADD
        assert OpKind.from_string("*") is OpKind.MUL
        assert OpKind.from_string("<") is OpKind.CMP
        assert OpKind.from_string("<<") is OpKind.SHL

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown operation kind"):
            OpKind.from_string("frobnicate")

    def test_str_is_value(self):
        assert str(OpKind.ADD) == "add"

    def test_every_kind_has_a_symbol(self):
        for kind in OpKind:
            assert kind.symbol
            assert OpKind.from_string(kind.symbol) is kind


class TestOperation:
    def test_basic_construction(self):
        op = Operation(op_id="n1", kind=OpKind.ADD)
        assert op.op_id == "n1"
        assert op.kind is OpKind.ADD

    def test_label_defaults_to_symbol_and_id(self):
        assert Operation(op_id="n3", kind=OpKind.MUL).label == "*n3"

    def test_label_uses_explicit_name(self):
        op = Operation(op_id="n3", kind=OpKind.MUL, name="3*x")
        assert op.label == "3*x"
        assert str(op) == "3*x"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Operation(op_id="", kind=OpKind.ADD)

    def test_non_opkind_kind_rejected(self):
        with pytest.raises(TypeError, match="OpKind"):
            Operation(op_id="n1", kind="add")

    def test_operations_are_frozen(self):
        op = Operation(op_id="n1", kind=OpKind.ADD)
        with pytest.raises(AttributeError):
            op.op_id = "n2"

    def test_equality_by_value(self):
        assert Operation("n1", OpKind.ADD) == Operation("n1", OpKind.ADD)
        assert Operation("n1", OpKind.ADD) != Operation("n1", OpKind.SUB)
