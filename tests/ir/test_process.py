"""Tests for repro.ir.process (blocks, processes, system specs)."""

import pytest

from repro.errors import SpecificationError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec


def small_graph(name="g", kinds=(OpKind.ADD, OpKind.MUL)):
    graph = DataFlowGraph(name=name)
    for i, kind in enumerate(kinds):
        graph.add(f"n{i}", kind)
    for i in range(len(kinds) - 1):
        graph.add_edge(f"n{i}", f"n{i + 1}")
    return graph


class TestBlock:
    def test_valid_block(self):
        block = Block(name="b", graph=small_graph(), deadline=5)
        assert block.deadline == 5
        assert len(block.operations) == 2

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(SpecificationError, match="positive"):
            Block(name="b", graph=small_graph(), deadline=0)

    def test_empty_graph_rejected(self):
        with pytest.raises(SpecificationError, match="empty"):
            Block(name="b", graph=DataFlowGraph(), deadline=5)

    def test_kinds_used_deterministic(self):
        block = Block(name="b", graph=small_graph(), deadline=5)
        assert block.kinds_used() == [OpKind.ADD, OpKind.MUL]

    def test_repeats_flag(self):
        block = Block(name="b", graph=small_graph(), deadline=5, repeats=True)
        assert block.repeats


class TestProcess:
    def test_add_and_lookup_block(self):
        process = Process(name="p")
        block = Block(name="b", graph=small_graph(), deadline=5)
        process.add_block(block)
        assert process.block("b") is block

    def test_duplicate_block_name_rejected(self):
        process = Process(name="p")
        process.add_block(Block(name="b", graph=small_graph(), deadline=5))
        with pytest.raises(SpecificationError, match="duplicate"):
            process.add_block(Block(name="b", graph=small_graph(), deadline=5))

    def test_duplicate_in_constructor_rejected(self):
        blocks = [
            Block(name="b", graph=small_graph(), deadline=5),
            Block(name="b", graph=small_graph(), deadline=6),
        ]
        with pytest.raises(SpecificationError, match="duplicate"):
            Process(name="p", blocks=blocks)

    def test_unknown_block_lookup(self):
        with pytest.raises(SpecificationError, match="no block"):
            Process(name="p").block("zz")

    def test_kinds_and_operation_count(self):
        process = Process(name="p")
        process.add_block(Block(name="b1", graph=small_graph(), deadline=5))
        process.add_block(
            Block(name="b2", graph=small_graph(kinds=(OpKind.SUB,)), deadline=3)
        )
        assert process.kinds_used() == [OpKind.ADD, OpKind.MUL, OpKind.SUB]
        assert process.operation_count == 3


class TestSystemSpec:
    def make_system(self):
        system = SystemSpec(name="s")
        for name in ("p1", "p2"):
            process = Process(name=name)
            process.add_block(Block(name="main", graph=small_graph(), deadline=6))
            system.add_process(process)
        return system

    def test_add_and_lookup(self):
        system = self.make_system()
        assert len(system) == 2
        assert "p1" in system
        assert system.process("p1").name == "p1"

    def test_duplicate_process_rejected(self):
        system = self.make_system()
        process = Process(name="p1")
        process.add_block(Block(name="main", graph=small_graph(), deadline=6))
        with pytest.raises(SpecificationError, match="duplicate"):
            system.add_process(process)

    def test_empty_process_rejected(self):
        system = SystemSpec()
        with pytest.raises(SpecificationError, match="no blocks"):
            system.add_process(Process(name="p"))

    def test_unknown_process_lookup(self):
        with pytest.raises(SpecificationError, match="no process"):
            self.make_system().process("zz")

    def test_iter_blocks_covers_everything(self):
        pairs = list(self.make_system().iter_blocks())
        assert [(p.name, b.name) for p, b in pairs] == [
            ("p1", "main"),
            ("p2", "main"),
        ]

    def test_processes_using(self):
        system = self.make_system()
        assert system.processes_using(OpKind.MUL) == ["p1", "p2"]
        assert system.processes_using(OpKind.DIV) == []

    def test_validate_empty_system_rejected(self):
        with pytest.raises(SpecificationError, match="no processes"):
            SystemSpec().validate()

    def test_validate_c1_deadline_feasibility(self):
        system = SystemSpec()
        process = Process(name="p")
        # Chain add->mul: needs 1 + 2 = 3 steps.
        process.add_block(Block(name="main", graph=small_graph(), deadline=2))
        system.add_process(process)
        latency = {OpKind.ADD: 1, OpKind.MUL: 2}
        with pytest.raises(SpecificationError, match="C1"):
            system.validate(lambda op: latency[op.kind])

    def test_validate_passes_with_enough_time(self):
        system = self.make_system()
        latency = {OpKind.ADD: 1, OpKind.MUL: 2}
        system.validate(lambda op: latency[op.kind])

    def test_operation_count(self):
        assert self.make_system().operation_count == 4
