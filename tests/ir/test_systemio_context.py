"""Error context in the ``.sys`` front end: line numbers and value caps.

Every :class:`SpecificationError` the parser or the document builder
raises must carry a ``line N:`` prefix pointing at the offending
directive, so fuzzed or hand-mangled inputs are debuggable without a
traceback.  The numeric caps keep a corrupted ``deadline=``/``period``
from sizing gigabyte arrays inside the schedulers.
"""

import re

import pytest

from repro.errors import SpecificationError
from repro.ir import systemio
from repro.ir.systemio import MAX_DEADLINE, MAX_PERIOD


def error_of(text):
    with pytest.raises(SpecificationError) as excinfo:
        doc = systemio.loads(text)
        doc.build_system()
    return str(excinfo.value)


class TestLineContext:
    def test_parse_error_names_the_line(self):
        message = error_of("system x\nfrobnicate\n")
        assert message.startswith("line 2:")

    def test_line_numbers_count_comments_and_blanks(self):
        message = error_of("# header\n\nsystem x\nfrobnicate\n")
        assert message.startswith("line 4:")

    def test_bad_op_names_its_line(self):
        message = error_of(
            "system x\nprocess p\nblock p b deadline=4\nop p b a1\n"
        )
        assert message.startswith("line 4:")
        assert "'op' takes" in message

    def test_build_error_points_at_the_block_directive(self):
        """Empty blocks only surface at build time; the error still names
        the ``block`` line, not just the block."""
        message = error_of("system x\nprocess p\nblock p b deadline=4\n")
        assert message.startswith("line 3:")
        assert "block p/b" in message

    def test_cycle_rejection_names_the_edge_line(self):
        message = error_of(
            "system x\nprocess p\nblock p b deadline=4\n"
            "op p b a add\nop p b c add\n"
            "edge p b a c\nedge p b c a\n"
        )
        assert message.startswith("line 7:")
        assert "cycle" in message

    def test_every_reported_line_is_within_the_document(self):
        texts = [
            "nonsense\n",
            "system x\nprocess p\nblock p b deadline=0\n",
            "system x\nprocess p\nblock p b deadline=4\nedge p b a c\n",
        ]
        for text in texts:
            match = re.match(r"line (\d+):", error_of(text))
            assert match, text
            assert 1 <= int(match.group(1)) <= text.count("\n")


class TestNumericCaps:
    def test_deadline_cap(self):
        message = error_of(
            f"system x\nprocess p\nblock p b deadline={MAX_DEADLINE + 1}\n"
        )
        assert "cap" in message
        assert str(MAX_DEADLINE) in message

    def test_deadline_at_cap_is_accepted(self):
        doc = systemio.loads(
            f"system x\nprocess p\nblock p b deadline={MAX_DEADLINE}\n"
            "op p b a add\n"
        )
        assert doc.blocks["p"]["b"][1] == MAX_DEADLINE

    def test_deadline_must_be_positive(self):
        message = error_of("system x\nprocess p\nblock p b deadline=0\n")
        assert ">= 1" in message

    def test_period_cap(self):
        message = error_of(f"system x\nperiod mult {MAX_PERIOD + 1}\n")
        assert "cap" in message

    def test_period_must_be_positive(self):
        message = error_of("system x\nperiod mult 0\n")
        assert ">= 1" in message
