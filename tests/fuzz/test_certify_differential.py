"""Differential fuzzing: the static certifier vs dynamic simulation.

Two independent oracles judge every schedulable input: the symbolic
safety certifier (deployed offsets, derived pools) and the randomized
system simulator.  They must agree — a certificate that proves the pools
safe while a simulation seed produces a conflict (or vice versa) is the
``diverged`` outcome, and means one of the two implementations is wrong.

The campaign is deterministic, mirroring ``test_fuzz_invariant``: fixed
seed, fixed corpus, fixed input count.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.validation.budget import RunBudget
from repro.validation.fuzz import (
    OUTCOME_CRASHED,
    OUTCOME_DIVERGED,
    OUTCOME_SCHEDULED,
    differential_text,
    mutate_text,
)

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "diffeq_pair.sys"

SMALL_TEXT = """\
system differential-seed
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
edge p2 main m1 a1
global multiplier p1 p2
period multiplier 4
"""

BUDGET = RunBudget(max_iterations=5000, wall_deadline=2.0)


def corpus():
    return [SMALL_TEXT, EXAMPLE.read_text()]


def test_valid_corpus_certifies_and_simulates_clean():
    for text in corpus():
        outcome = differential_text(text, budget=BUDGET, seeds=10, cycles=300)
        assert outcome.outcome == OUTCOME_SCHEDULED, outcome.detail
        assert "safe" in outcome.detail


def test_differential_oracle_fixed_seed():
    rng = random.Random(0xD1FF)
    tallies = {OUTCOME_SCHEDULED: 0}
    for i in range(30):
        text = mutate_text(corpus()[i % 2], rng)
        outcome = differential_text(text, budget=BUDGET, seeds=3, cycles=200)
        assert outcome.outcome != OUTCOME_DIVERGED, (
            f"oracles disagree on mutant {i}: {outcome.detail}"
        )
        assert outcome.outcome != OUTCOME_CRASHED, (
            f"mutant {i} escaped: {outcome.detail}"
        )
        tallies[outcome.outcome] = tallies.get(outcome.outcome, 0) + 1
    # The campaign must exercise the certifier, not only the parser.
    assert tallies[OUTCOME_SCHEDULED] >= 3, tallies
