"""Bounded mutation-fuzz campaign asserting the robustness invariant.

Every mutated ``.sys`` input must either be rejected with a
:class:`ReproError` subclass or schedule-and-verify — never escape with
a bare ``KeyError``/``IndexError``/``TypeError`` and never hang (the
scheduler honours the :class:`RunBudget`; CI adds a step-level timeout).

The campaign is deterministic: a fixed seed, a fixed corpus, a fixed
input count.  ``benchmarks/fuzz_runner.py`` runs the open-ended version.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.validation.budget import RunBudget
from repro.validation.fuzz import (
    OUTCOME_CRASHED,
    OUTCOME_REJECTED,
    OUTCOME_SCHEDULED,
    exercise_text,
    mutate_text,
)

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "diffeq_pair.sys"

SMALL_TEXT = """\
system fuzz-seed
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
edge p2 main m1 a1
global multiplier p1 p2
period multiplier 4
"""

BUDGET = RunBudget(max_iterations=5000, wall_deadline=2.0)


def corpus():
    return [SMALL_TEXT, EXAMPLE.read_text()]


def test_valid_corpus_schedules_clean():
    for text in corpus():
        outcome = exercise_text(text, budget=BUDGET)
        assert outcome.outcome == OUTCOME_SCHEDULED, outcome.detail


def test_fuzz_invariant_fixed_seed():
    rng = random.Random(0xC0FFEE)
    seeds = corpus()
    crashes = []
    outcomes = {OUTCOME_REJECTED: 0, OUTCOME_SCHEDULED: 0, OUTCOME_CRASHED: 0}
    for _ in range(150):
        mutated = mutate_text(rng.choice(seeds), rng)
        outcome = exercise_text(mutated, budget=BUDGET)
        outcomes[outcome.outcome] += 1
        if not outcome.ok:
            crashes.append((outcome.detail, mutated))
    assert not crashes, "\n\n".join(
        f"{detail}\n{text}" for detail, text in crashes[:3]
    )
    # The campaign must actually exercise both sides of the invariant.
    assert outcomes[OUTCOME_REJECTED] > 0
    assert outcomes[OUTCOME_SCHEDULED] > 0


def test_rejections_carry_error_codes():
    rng = random.Random(99)
    seen_codes = set()
    for _ in range(60):
        mutated = mutate_text(SMALL_TEXT, rng)
        outcome = exercise_text(mutated, budget=BUDGET)
        if outcome.outcome == OUTCOME_REJECTED:
            assert "[" in outcome.detail and "]" in outcome.detail
            seen_codes.add(outcome.detail.split("[", 1)[1].split("]", 1)[0])
    assert seen_codes, "no rejection was produced at all"


def test_numeric_blowup_is_rejected_not_oom():
    """The parse-time caps stop fuzzed deadlines from sizing huge arrays."""
    huge = SMALL_TEXT.replace("deadline=8", "deadline=999999999999")
    outcome = exercise_text(huge, budget=BUDGET)
    assert outcome.outcome == OUTCOME_REJECTED
    assert "cap" in outcome.detail


def test_mutations_are_deterministic():
    a = mutate_text(SMALL_TEXT, random.Random(7), rounds=3)
    b = mutate_text(SMALL_TEXT, random.Random(7), rounds=3)
    assert a == b
