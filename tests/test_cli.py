"""Tests for the command-line interface."""

import pytest

from repro.cli import main

TEXT = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
global multiplier p1 p2
period multiplier 4
"""


@pytest.fixture
def sys_file(tmp_path):
    path = tmp_path / "demo.sys"
    path.write_text(TEXT, encoding="utf-8")
    return str(path)


class TestScheduleCommand:
    def test_schedule_prints_summary(self, sys_file, capsys):
        assert main(["schedule", sys_file]) == 0
        out = capsys.readouterr().out
        assert "multiplier" in out
        assert "verified" in out

    def test_schedule_table(self, sys_file, capsys):
        assert main(["schedule", sys_file, "--table"]) == 0
        out = capsys.readouterr().out
        assert "global type 'multiplier'" in out

    def test_schedule_local(self, sys_file, capsys):
        assert main(["schedule", sys_file, "--local"]) == 0
        out = capsys.readouterr().out
        assert "2x multiplier" in out

    def test_schedule_no_verify(self, sys_file, capsys):
        assert main(["schedule", sys_file, "--no-verify"]) == 0
        assert "verified" not in capsys.readouterr().out

    def test_schedule_no_scoreboard_same_result(self, sys_file, capsys):
        assert main(["schedule", sys_file]) == 0
        default = capsys.readouterr().out
        assert main(["schedule", sys_file, "--no-scoreboard"]) == 0
        assert capsys.readouterr().out == default


class TestOtherCommands:
    def test_compare(self, sys_file, capsys):
        assert main(["compare", sys_file]) == 0
        out = capsys.readouterr().out
        assert "saves" in out

    def test_simulate(self, sys_file, capsys):
        assert main(["simulate", sys_file, "--cycles", "300", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "violations: none" in out

    def test_sweep(self, sys_file, capsys):
        assert main(["sweep", sys_file]) == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_info(self, sys_file, capsys):
        assert main(["info", sys_file]) == 0
        out = capsys.readouterr().out
        assert "2 processes" in out
        assert "critical path" in out


class TestSweepEngine:
    """The engine-backed sweep: summary, -v gating, flags, truncation."""

    def test_default_output_is_compact(self, sys_file, capsys):
        assert main(["sweep", sys_file]) == 0
        out = capsys.readouterr().out
        assert "sweep:" in out and "evaluated" in out and "pruned" in out
        assert "-> area" not in out  # per-candidate lines need -v

    def test_verbose_prints_candidates(self, sys_file, capsys):
        assert main(["sweep", sys_file, "-v", "--no-prune"]) == 0
        out = capsys.readouterr().out
        assert "-> area" in out
        assert "best:" in out

    def test_no_prune_evaluates_everything(self, sys_file, capsys):
        assert main(["sweep", sys_file, "--no-prune"]) == 0
        out = capsys.readouterr().out
        assert " 0 pruned" in out

    def test_prune_and_no_prune_agree_on_best(self, sys_file, capsys):
        assert main(["sweep", sys_file]) == 0
        pruned_out = capsys.readouterr().out
        assert main(["sweep", sys_file, "--no-prune"]) == 0
        exhaustive_out = capsys.readouterr().out
        best = [l for l in pruned_out.splitlines() if l.startswith("best:")]
        best_ex = [
            l for l in exhaustive_out.splitlines() if l.startswith("best:")
        ]
        assert best and best == best_ex

    def test_workers_flag_same_best(self, sys_file, capsys):
        assert main(["sweep", sys_file, "--no-prune"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["sweep", sys_file, "--no-prune", "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        best = [l for l in serial_out.splitlines() if l.startswith("best:")]
        best_par = [
            l for l in parallel_out.splitlines() if l.startswith("best:")
        ]
        assert best and best == best_par

    def test_sweep_no_scoreboard_same_best(self, sys_file, capsys):
        assert main(["sweep", sys_file, "--no-prune"]) == 0
        default_out = capsys.readouterr().out
        assert main(["sweep", sys_file, "--no-prune", "--no-scoreboard"]) == 0
        rescan_out = capsys.readouterr().out
        assert default_out == rescan_out
        assert any(
            line.startswith("best:") for line in rescan_out.splitlines()
        )

    def test_limit_truncation_warns(self, sys_file, capsys):
        assert main(["sweep", sys_file, "--limit", "2"]) == 0
        captured = capsys.readouterr()
        assert "2 period assignments survive" in captured.out
        assert "truncated" in captured.err
        assert "truncated" in captured.out  # summary carries the count

    def test_no_truncation_no_warning(self, sys_file, capsys):
        assert main(["sweep", sys_file]) == 0
        assert "truncated" not in capsys.readouterr().out

    def test_sweep_profile_uses_merged_telemetry(self, sys_file, capsys):
        assert main(["sweep", sys_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out
        assert "counters" in out

    def test_compare_workers(self, sys_file, capsys):
        assert main(["compare", sys_file]) == 0
        serial_out = capsys.readouterr().out
        assert main(["compare", sys_file, "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Identical report shape; wall times legitimately differ.
        strip = lambda text: [
            line.split("(")[0]
            for line in text.splitlines()
            if line.strip()
        ]
        assert strip(parallel_out) == strip(serial_out)

class TestObservability:
    def test_schedule_profile_prints_tables(self, sys_file, capsys):
        assert main(["schedule", sys_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out
        assert "reduction_loop" in out
        assert "counters" in out
        assert "force_evaluations" in out

    def test_schedule_trace_writes_jsonl(self, sys_file, tmp_path, capsys):
        import json

        target = str(tmp_path / "trace.jsonl")
        assert main(["schedule", sys_file, "--trace", target]) == 0
        assert "wrote" in capsys.readouterr().out
        lines = open(target, encoding="utf-8").read().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        reductions = [r for r in records if r["name"] == "reduction"]
        assert len(reductions) >= 1
        # One event per scheduler iteration.
        iterations = max(r["attrs"]["iteration"] for r in reductions)
        assert len(reductions) == iterations

    def test_profile_subcommand(self, sys_file, capsys):
        assert main(["profile", sys_file]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out
        assert "counters" in out

    def test_profile_subcommand_local(self, sys_file, capsys):
        assert main(["profile", sys_file, "--local"]) == 0
        assert "phase timings" in capsys.readouterr().out

    def test_compare_profile(self, sys_file, capsys):
        assert main(["compare", sys_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "saves" in out
        assert "counters" in out

    def test_sweep_trace(self, sys_file, tmp_path, capsys):
        target = str(tmp_path / "sweep.jsonl")
        assert main(["sweep", sys_file, "--trace", target]) == 0
        out = capsys.readouterr().out
        assert "best:" in out and "wrote" in out

    def test_verbose_flag_accepted(self, sys_file, capsys):
        assert main(["schedule", sys_file, "-v"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_quiet_flag_accepted(self, sys_file, capsys):
        assert main(["simulate", sys_file, "--cycles", "100", "-q"]) == 0


class TestExplainAndReport:
    def test_explain_names_a_bottleneck_triple(self, sys_file, capsys):
        assert main(["explain", sys_file]) == 0
        out = capsys.readouterr().out
        assert "area attribution" in out
        assert "pinned by (type 'multiplier', slot " in out
        assert "audited reduction decision(s)" in out

    def test_explain_triple_matches_certifier(self, sys_file, capsys):
        from repro.analysis.static.certifier import pool_conflict
        from repro.api import load_problem

        assert main(["explain", sys_file]) == 0
        out = capsys.readouterr().out
        result = load_problem(sys_file).schedule()
        conflict = pool_conflict(
            result, "multiplier", result.global_instances("multiplier")
        )
        assert conflict.triple() in out

    def test_explain_json(self, sys_file, capsys):
        import json

        assert main(["explain", sys_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["system"] == "demo"
        globals_ = [e for e in data["entries"] if e["scope"] == "global"]
        assert globals_ and globals_[0]["type"] == "multiplier"
        assert globals_[0]["audit_decisions"] > 0

    def test_explain_markdown(self, sys_file, capsys):
        assert main(["explain", sys_file, "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "| rank | type | scope |" in out

    def test_explain_audit_export(self, sys_file, tmp_path, capsys):
        import json

        target = str(tmp_path / "audit.jsonl")
        assert main(["explain", sys_file, "--audit", target]) == 0
        assert "audit records" in capsys.readouterr().out
        lines = open(target, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "audit_summary"
        assert header["recorded"] == len(lines) - 1 > 0

    def test_schedule_audit_export(self, sys_file, tmp_path, capsys):
        import json

        target = str(tmp_path / "audit.jsonl")
        assert main(["schedule", sys_file, "--audit", target]) == 0
        assert "audit records" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in open(target, encoding="utf-8")
        ]
        decisions = [r for r in records if r["type"] == "decision"]
        assert decisions
        for record in decisions:
            assert record["candidates"]
            assert record["op"] in {
                c["op"] for c in record["candidates"]
            }

    def test_schedule_audit_capacity_caps_trail(
        self, sys_file, tmp_path, capsys
    ):
        import json

        target = str(tmp_path / "audit.jsonl")
        assert main(
            ["schedule", sys_file, "--audit", target, "--audit-capacity", "3"]
        ) == 0
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in open(target, encoding="utf-8")
        ]
        assert records[0]["dropped"] > 0
        assert len(records) - 1 == 3

    def test_report_to_stdout(self, sys_file, capsys):
        assert main(["report", sys_file]) == 0
        out = capsys.readouterr().out
        assert "# Run report:" in out
        assert "## Area attribution" in out
        assert "(type 'multiplier', slot " in out

    def test_report_to_file(self, sys_file, tmp_path, capsys):
        target = str(tmp_path / "report.md")
        assert main(["report", sys_file, "-o", target]) == 0
        assert "wrote" in capsys.readouterr().out
        text = open(target, encoding="utf-8").read()
        assert "## Profile" in text and "## Schedule" in text

    def test_report_json(self, sys_file, capsys):
        import json

        assert main(["report", sys_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["system"] == "demo"
        assert data["telemetry"]["iterations"] > 0
        assert data["attribution"]["entries"]

    def test_profile_json_format(self, sys_file, capsys):
        import json

        assert main(["profile", sys_file, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["iterations"] > 0
        assert "force_evaluations" in data["counters"]
        assert "force_cache_hits" in data["counters"]
        assert "force_cache_misses" in data["counters"]
        assert "phase_times" in data
        assert "select_seconds" in data["histograms"]
        assert "frames_remaining" in data["gauges"]

    def test_sweep_live_progress_on_stderr(self, sys_file, capsys):
        assert main(["sweep", sys_file, "--live"]) == 0
        captured = capsys.readouterr()
        assert "best:" in captured.out
        lines = [
            line for line in captured.err.splitlines() if line.startswith("[")
        ]
        assert lines
        assert lines[-1].startswith(f"[{len(lines)}/{len(lines)}]")
        assert any("-> area" in line or "pruned" in line for line in lines)

    def test_sweep_live_does_not_change_best(self, sys_file, capsys):
        assert main(["sweep", sys_file]) == 0
        plain = capsys.readouterr().out
        assert main(["sweep", sys_file, "--live"]) == 0
        live = capsys.readouterr().out
        pick = lambda text: [
            l for l in text.splitlines() if l.startswith("best:")
        ]
        assert pick(plain) and pick(plain) == pick(live)


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["schedule", "/nonexistent/x.sys"]) == 2
        assert "error [OS]:" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.sys"
        path.write_text("frobnicate\n", encoding="utf-8")
        assert main(["schedule", str(path)]) == 2
        assert "error [" in capsys.readouterr().err

    def test_infeasible_deadline(self, tmp_path, capsys):
        path = tmp_path / "tight.sys"
        path.write_text(
            "process p\nblock p b deadline=1\n"
            "op p b m mul\n",
            encoding="utf-8",
        )
        assert main(["schedule", str(path)]) == 2


class TestRtlAndGantt:
    def test_rtl_to_stdout(self, sys_file, capsys):
        assert main(["rtl", sys_file]) == 0
        out = capsys.readouterr().out
        assert "module p1_main_ctrl (" in out
        assert "endmodule" in out

    def test_rtl_to_file(self, sys_file, tmp_path, capsys):
        target = str(tmp_path / "out.v")
        assert main(["rtl", sys_file, "-o", target]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        with open(target, encoding="utf-8") as handle:
            assert "module" in handle.read()

    def test_gantt(self, sys_file, capsys):
        assert main(["gantt", sys_file]) == 0
        out = capsys.readouterr().out
        assert "=== p1/main ===" in out
        assert "-- multiplier --" in out

    def test_export_stdout(self, sys_file, capsys):
        assert main(["export", sys_file]) == 0
        import json

        parsed = json.loads(capsys.readouterr().out)
        assert parsed["system"] == "demo"

    def test_export_to_file(self, sys_file, tmp_path, capsys):
        import json

        target = str(tmp_path / "r.json")
        assert main(["export", sys_file, "-o", target]) == 0
        with open(target, encoding="utf-8") as handle:
            parsed = json.load(handle)
        assert "global_types" in parsed
