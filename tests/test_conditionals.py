"""Tests for guarded (conditional) operations across the whole stack.

Mutually exclusive branch operations share resources like alternation
branches in classic FDS: distributions and usage profiles combine per
condition by pointwise maximum, binding may map exclusive operations to
one instance, the simulator draws branch outcomes per activation, and
the RTL consistency checker accepts exclusive same-unit issues.
"""

import numpy as np
import pytest

from repro.binding.instances import bind_instances
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.core.verify import verify_system_schedule
from repro.ir import textio
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind, Operation
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.rtl.design import build_rtl
from repro.scheduling.distribution import BlockDistributions, combine_rows
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.scheduling.schedule import BlockSchedule
from repro.scheduling.timeframes import FrameTable
from repro.sim.simulator import SystemSimulator


def branchy_graph():
    """Two exclusive adds (then/else of c1) plus one unconditional add."""
    graph = DataFlowGraph(name="branchy")
    graph.add("t", OpKind.ADD, guard=("c1", "then"))
    graph.add("e", OpKind.ADD, guard=("c1", "else"))
    graph.add("u", OpKind.ADD)
    return graph


class TestOperationGuards:
    def test_excludes_same_condition_different_branch(self):
        a = Operation("a", OpKind.ADD, guard=("c", "t"))
        b = Operation("b", OpKind.ADD, guard=("c", "e"))
        assert a.excludes(b) and b.excludes(a)

    def test_same_branch_not_exclusive(self):
        a = Operation("a", OpKind.ADD, guard=("c", "t"))
        b = Operation("b", OpKind.ADD, guard=("c", "t"))
        assert not a.excludes(b)

    def test_different_conditions_not_exclusive(self):
        a = Operation("a", OpKind.ADD, guard=("c1", "t"))
        b = Operation("b", OpKind.ADD, guard=("c2", "e"))
        assert not a.excludes(b)

    def test_unguarded_not_exclusive(self):
        a = Operation("a", OpKind.ADD)
        b = Operation("b", OpKind.ADD, guard=("c", "t"))
        assert not a.excludes(b)

    def test_bad_guard_rejected(self):
        with pytest.raises(ValueError, match="guard"):
            Operation("a", OpKind.ADD, guard=("c",))
        with pytest.raises(ValueError, match="guard"):
            Operation("a", OpKind.ADD, guard=("c", ""))

    def test_graph_conditions(self):
        assert branchy_graph().conditions() == {"c1": ["then", "else"]}


class TestCombineRows:
    def test_exclusive_rows_take_max(self):
        rows = {
            "t": np.array([1.0, 0.0]),
            "e": np.array([0.5, 0.5]),
        }
        guards = {"t": ("c", "t"), "e": ("c", "e")}
        combined = combine_rows(rows, guards, 2)
        assert combined.tolist() == [1.0, 0.5]

    def test_same_branch_rows_add(self):
        rows = {
            "a": np.array([1.0, 0.0]),
            "b": np.array([1.0, 0.0]),
        }
        guards = {"a": ("c", "t"), "b": ("c", "t")}
        assert combine_rows(rows, guards, 2).tolist() == [2.0, 0.0]

    def test_unguarded_adds_on_top(self):
        rows = {
            "t": np.array([1.0, 0.0]),
            "e": np.array([1.0, 0.0]),
            "u": np.array([1.0, 0.0]),
        }
        guards = {"t": ("c", "t"), "e": ("c", "e"), "u": None}
        assert combine_rows(rows, guards, 2).tolist() == [2.0, 0.0]


class TestDistributions:
    def test_distribution_uses_branch_max(self):
        library = default_library()
        graph = branchy_graph()
        frames = FrameTable(graph, library.latency_of, 2)
        dist = BlockDistributions(graph, library, frames)
        # 3 ops, each uniform 0.5/0.5; exclusive pair contributes max 0.5.
        assert np.allclose(dist.array("adder"), [1.0, 1.0])
        assert dist.has_guards("adder")

    def test_refresh_recomputes_guarded_type(self):
        library = default_library()
        graph = branchy_graph()
        frames = FrameTable(graph, library.latency_of, 2)
        dist = BlockDistributions(graph, library, frames)
        dist.refresh(frames.fix("t", 0))
        dist.refresh(frames.fix("e", 0))
        dist.refresh(frames.fix("u", 1))
        assert np.allclose(dist.array("adder"), [1.0, 1.0])


class TestUsageProfile:
    def test_worst_case_over_branches(self):
        library = default_library()
        graph = branchy_graph()
        sched = BlockSchedule(
            graph=graph,
            library=library,
            starts={"t": 0, "e": 0, "u": 1},
            deadline=2,
        )
        assert sched.usage_profile("adder").tolist() == [1, 1]
        assert sched.peak_usage("adder") == 1


class TestSchedulingWithGuards:
    def test_ifds_exploits_exclusivity(self):
        """Exclusive ops can overlap: 1 adder suffices in 2 steps for
        2 exclusive ops + 1 unconditional op."""
        library = default_library()
        block = Block(name="b", graph=branchy_graph(), deadline=2)
        schedule = ImprovedForceDirectedScheduler(library).schedule(block)
        assert schedule.peak_usage("adder") == 1

    def make_result(self):
        library = default_library()
        system = SystemSpec(name="s")
        p1 = Process(name="p1")
        p1.add_block(Block(name="main", graph=branchy_graph(), deadline=4))
        system.add_process(p1)
        g2 = DataFlowGraph(name="g2")
        g2.add("x", OpKind.ADD)
        p2 = Process(name="p2")
        p2.add_block(Block(name="main", graph=g2, deadline=2))
        system.add_process(p2)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        return result

    def test_system_schedule_verifies(self):
        result = self.make_result()
        report = verify_system_schedule(result)
        assert report.ok, str(report)

    def test_binding_allows_exclusive_sharing(self):
        result = self.make_result()
        binding = bind_instances(result)
        binding.validate()
        sched = result.block_schedules[("p1", "main")]
        if sched.start("t") == sched.start("e"):
            assert binding.instance_of("p1", "main", "t") == binding.instance_of(
                "p1", "main", "e"
            )

    def test_simulation_conflict_free(self):
        result = self.make_result()
        for seed in range(5):
            stats = SystemSimulator(result, seed=seed, trigger_probability=0.6)
            outcome = stats.run(600)
            assert outcome.ok, outcome.trace.render()

    def test_rtl_accepts_exclusive_issues(self):
        result = self.make_result()
        design = build_rtl(result)
        design.consistency_check()


class TestGuardSerialization:
    def test_textio_round_trip(self):
        graph = branchy_graph()
        loaded = textio.loads(textio.dumps(graph))
        assert loaded.operation("t").guard == ("c1", "then")
        assert loaded.operation("e").guard == ("c1", "else")
        assert loaded.operation("u").guard is None

    def test_systemio_guard_parsing(self):
        from repro.ir import systemio

        doc = systemio.loads(
            "process p\nblock p b deadline=4\n"
            "op p b t add guard=c1:then\n"
            "op p b e add mylabel guard=c1:else\n"
        )
        graph = doc.build_system().process("p").block("b").graph
        assert graph.operation("t").guard == ("c1", "then")
        assert graph.operation("e").name == "mylabel"
        assert graph.operation("e").guard == ("c1", "else")

    def test_bad_guard_rejected(self):
        with pytest.raises(Exception, match="CONDITION:BRANCH"):
            textio.loads("op a add guard=oops\n")
