"""Cache eviction: LRU GC, durable tombstones, and crash recovery."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.service import JobStore, ServiceError
from repro.service.jobstore import STATE_EVICTED

from .conftest import SMALL_TEXT, _src_pythonpath

#: A second, distinct problem so two jobs land in the cache.
OTHER_TEXT = SMALL_TEXT.replace("system demo", "system other")


def _cache_path(store: JobStore, job_id: str) -> str:
    return os.path.join(store.cache_dir, f"{job_id}.json")


def _set_mtime(store: JobStore, job_id: str, when: float) -> None:
    os.utime(_cache_path(store, job_id), (when, when))


def _run_two(store: JobStore):
    """Two done jobs; the first one's payload is made strictly older."""
    old, _ = store.submit("schedule", SMALL_TEXT)
    new, _ = store.submit("schedule", OTHER_TEXT)
    assert store.run_until_idle() == 2
    _set_mtime(store, old.job_id, 1_000.0)
    _set_mtime(store, new.job_id, 2_000.0)
    return old, new


# ----------------------------------------------------------------------
# Eviction order and accounting
# ----------------------------------------------------------------------
def test_gc_evicts_least_recently_used_first(store):
    old, new = _run_two(store)
    keep = os.path.getsize(_cache_path(store, new.job_id))
    stats = store.gc(keep)
    assert stats["evicted"] == 1
    assert stats["freed_bytes"] > 0
    assert stats["remaining_bytes"] == keep
    assert old.state == STATE_EVICTED
    assert not old.cached
    assert not os.path.exists(_cache_path(store, old.job_id))
    # The newer payload survives untouched.
    assert new.state == "done"
    assert store.result_bytes(new.job_id)
    assert store.metrics.counter_value("service_cache_evictions") == 1


def test_gc_zero_budget_clears_the_cache(store):
    _run_two(store)
    stats = store.gc(0)
    assert stats["evicted"] == 2
    assert stats["remaining_bytes"] == 0
    assert [n for n in os.listdir(store.cache_dir)] == []


def test_gc_within_budget_is_a_noop(store):
    _run_two(store)
    stats = store.gc(10**9)
    assert stats == {
        "evicted": 0,
        "freed_bytes": 0,
        "remaining_bytes": stats["remaining_bytes"],
    }
    assert stats["remaining_bytes"] > 0


def test_gc_rejects_negative_budget(store):
    with pytest.raises(ServiceError, match="max_cache_bytes"):
        store.gc(-1)


def test_evicted_result_is_an_error(store):
    old, _new = _run_two(store)
    store.gc(0)
    with pytest.raises(ServiceError, match="evicted"):
        store.result_bytes(old.job_id)


def test_resubmission_after_eviction_reruns(store):
    old, _new = _run_two(store)
    reference = store.result_bytes(old.job_id)
    store.gc(0)
    again, hit = store.submit("schedule", SMALL_TEXT)
    assert not hit
    assert again.state == "queued"
    assert store.run_until_idle() == 1
    assert store.result_bytes(again.job_id) == reference


def test_cache_hit_refreshes_the_lru_clock(store):
    old, new = _run_two(store)
    # A hit on the older payload bumps its mtime past the newer one's.
    _again, hit = store.submit("schedule", SMALL_TEXT)
    assert hit
    keep = os.path.getsize(_cache_path(store, old.job_id))
    stats = store.gc(keep)
    assert stats["evicted"] == 1
    assert new.state == STATE_EVICTED
    assert old.state == "done"
    assert store.result_bytes(old.job_id)


# ----------------------------------------------------------------------
# Tombstones and recovery
# ----------------------------------------------------------------------
def test_recovery_never_resurrects_an_evicted_payload(tmp_path):
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        old, _new = _run_two(first)
        first.gc(0)
    with JobStore(state) as second:
        assert second.recover() == 0
        record = second.status(old.job_id)
        assert record.state == STATE_EVICTED
        with pytest.raises(ServiceError):
            second.result_bytes(old.job_id)
        # Re-submission schedules fresh work, not a cache hit.
        again, hit = second.submit("schedule", SMALL_TEXT)
        assert not hit
        assert again.state == "queued"


def test_recovery_completes_an_interrupted_unlink(tmp_path):
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        old, _new = _run_two(first)
        payload = first.result_bytes(old.job_id)
        first.gc(0)
        # Crash between tombstone and unlink: the payload lingers.
        with open(_cache_path(first, old.job_id), "wb") as handle:
            handle.write(payload)
    with JobStore(state) as second:
        second.recover()
        assert not os.path.exists(_cache_path(second, old.job_id))
        assert second.status(old.job_id).state == STATE_EVICTED


def test_gc_tombstones_payloads_from_previous_lifetimes(tmp_path):
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        old, _new = _run_two(first)
    # A fresh store that never recovered still owes a tombstone for
    # files it only knows from the cache directory listing.
    with JobStore(state) as second:
        stats = second.gc(0)
        assert stats["evicted"] == 2
    with JobStore(state) as third:
        third.recover()
        again, hit = third.submit("schedule", SMALL_TEXT)
        assert not hit
        assert again.job_id == old.job_id


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=_src_pythonpath())
    return subprocess.run(
        [sys.executable, "-m", "repro", "jobs", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_gc_evicts_and_reports(tmp_path):
    state = str(tmp_path / "state")
    with JobStore(state) as store:
        _run_two(store)
    proc = _run_cli("--gc", "--state-dir", state, "--max-cache-bytes", "0")
    assert proc.returncode == 0, proc.stderr
    assert "evicted 2" in proc.stdout
    assert os.listdir(os.path.join(state, "cache")) == []


def test_cli_gc_requires_state_dir_and_budget(tmp_path):
    proc = _run_cli("--gc")
    assert proc.returncode == 2
    proc = _run_cli("--gc", "--state-dir", str(tmp_path / "state"))
    assert proc.returncode == 2
