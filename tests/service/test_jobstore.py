"""JobStore lifecycle: queueing, caching, retries, and crash recovery."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import SpecificationError
from repro.obs.events import EventBus
from repro.parallel.checkpoint import load_jsonl_tolerant
from repro.parallel.jobs import FaultPlan
from repro.parallel.retry import RetryPolicy
from repro.service import (
    JobStore,
    QueueFullError,
    ServiceError,
    UnknownJobError,
)

from .conftest import SMALL_TEXT

#: Retries with no real backoff so failure-path tests stay fast.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.02)


# ----------------------------------------------------------------------
# Happy path
# ----------------------------------------------------------------------
def test_submit_run_done(store):
    record, hit = store.submit("schedule", SMALL_TEXT)
    assert not hit
    assert record.state == "queued"
    assert store.run_until_idle() == 1
    final = store.wait(record.job_id, timeout=0)
    assert final.state == "done"
    assert final.attempts == 1
    payload = json.loads(store.result_bytes(record.job_id))
    assert payload["kind"] == "schedule"
    assert payload["job"] == record.job_id
    assert payload["verified"] is True
    assert payload["area"] > 0


def test_resubmission_is_a_cache_hit(store):
    record, _ = store.submit("schedule", SMALL_TEXT)
    store.run_until_idle()
    first = store.result_bytes(record.job_id)
    again, hit = store.submit("schedule", SMALL_TEXT)
    assert hit
    assert again.job_id == record.job_id
    assert store.result_bytes(again.job_id) == first
    assert store.metrics.counter_value("service_cache_hits") == 1
    # Nothing was scheduled twice.
    assert store.metrics.counter_value("service_jobs_completed") == 1


def test_disk_cache_survives_the_store(tmp_path, small_text):
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        record, _ = first.submit("certify", small_text)
        first.run_until_idle()
        payload = first.result_bytes(record.job_id)
    with JobStore(state) as second:
        again, hit = second.submit("certify", small_text)
        assert hit
        assert again.cached
        assert second.result_bytes(again.job_id) == payload
        # Answered straight from disk: nothing entered the queue.
        assert second.run_until_idle() == 0


def test_active_submissions_coalesce(store):
    record, _ = store.submit("schedule", SMALL_TEXT)
    again, hit = store.submit("schedule", SMALL_TEXT)
    assert again is record
    assert not hit
    assert store.metrics.counter_value("service_jobs_coalesced") == 1
    assert store.run_until_idle() == 1


# ----------------------------------------------------------------------
# Limits and rejection
# ----------------------------------------------------------------------
def test_queue_limit_rejects_with_busy(tmp_path, small_text):
    with JobStore(str(tmp_path / "state"), queue_limit=1) as store:
        store.submit("schedule", small_text)
        with pytest.raises(QueueFullError) as excinfo:
            store.submit("certify", small_text)
        assert excinfo.value.code == "BUSY"
        assert store.metrics.counter_value("service_queue_rejected") == 1


def test_unknown_job_raises(store):
    with pytest.raises(UnknownJobError):
        store.status("deadbeef")
    with pytest.raises(UnknownJobError):
        store.cancel("deadbeef")


def test_invalid_problem_rejected_at_submit(store):
    with pytest.raises(SpecificationError):
        store.submit("schedule", "system broken\nop nowhere")
    assert store.jobs() == []


def test_unknown_option_rejected_at_submit(store):
    with pytest.raises(SpecificationError) as excinfo:
        store.submit("schedule", SMALL_TEXT, {"turbo": True})
    assert excinfo.value.code == "SPEC"


def test_result_of_unfinished_job_is_an_error(store):
    record, _ = store.submit("schedule", SMALL_TEXT)
    with pytest.raises(ServiceError):
        store.result_bytes(record.job_id)


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def test_cancel_queued_job(store):
    record, _ = store.submit("schedule", SMALL_TEXT)
    assert store.cancel(record.job_id)
    assert record.state == "cancelled"
    assert store.run_until_idle() == 0
    # Terminal jobs cannot be cancelled again...
    assert not store.cancel(record.job_id)
    # ...but can be resubmitted fresh.
    fresh, hit = store.submit("schedule", SMALL_TEXT)
    assert not hit
    assert fresh.state == "queued"


# ----------------------------------------------------------------------
# Retries, faults, and timeouts
# ----------------------------------------------------------------------
def test_first_attempt_fault_retries_to_success(tmp_path, small_text):
    with JobStore(
        str(tmp_path / "state"), retry_policy=FAST_RETRY
    ) as store:
        record, _ = store.submit(
            "schedule", small_text, fault="raise:boom"
        )
        store.run_until_idle()
        assert record.state == "done"
        assert record.attempts == 2
        assert store.metrics.counter_value("service_jobs_retried") == 1
        payload = json.loads(store.result_bytes(record.job_id))
        assert payload["verified"] is True


def test_fault_plan_exhausts_retries(tmp_path, small_text):
    with JobStore(
        str(tmp_path / "state"),
        retry_policy=FAST_RETRY,
        fault_plan=FaultPlan.parse("raise:chaos@1x3"),
    ) as store:
        record, _ = store.submit("schedule", small_text)
        store.run_until_idle()
        assert record.state == "failed"
        assert record.attempts == 3
        assert "chaos" in record.error
        assert store.metrics.counter_value("service_jobs_failed") == 1
        assert store.metrics.counter_value("service_jobs_retried") == 2


def test_timed_out_attempt_retries_clean(tmp_path, small_text):
    with JobStore(
        str(tmp_path / "state"),
        job_timeout=0.2,
        retry_policy=FAST_RETRY,
    ) as store:
        record, _ = store.submit("schedule", small_text, fault="sleep:5")
        store.run_until_idle()
        assert record.state == "done"
        assert record.attempts == 2
        assert "timed out" in (record.error or "") or record.error is None


def test_faulted_run_converges_to_the_unfaulted_bytes(
    tmp_path, small_text
):
    with JobStore(str(tmp_path / "clean")) as clean:
        record, _ = clean.submit("schedule", small_text)
        clean.run_until_idle()
        reference = clean.result_bytes(record.job_id)
    with JobStore(
        str(tmp_path / "chaotic"), retry_policy=FAST_RETRY
    ) as chaotic:
        record, _ = chaotic.submit(
            "schedule", small_text, fault="raise:flaky"
        )
        chaotic.run_until_idle()
        assert chaotic.result_bytes(record.job_id) == reference


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
def test_recover_requeues_and_completes(tmp_path, small_text):
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        record, _ = first.submit("schedule", small_text)
        job_id = record.job_id
        # Crash before any worker ran it: journal says queued, no cache.
    with JobStore(state) as second:
        assert second.recover() == 1
        assert second.status(job_id).state == "queued"
        second.run_until_idle()
        assert second.status(job_id).state == "done"
        assert (
            second.metrics.counter_value("service_jobs_recovered") == 1
        )


def test_recover_promotes_cache_complete_jobs(tmp_path, small_text):
    """A crash between the cache write and the done record is still done."""
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        record, _ = first.submit("schedule", small_text)
        job_id = record.job_id
        # Simulate the torn commit: the cache write landed...
        first._write_cache(job_id, b'{"payload":"landed"}\n')
        # ...but the process died before journaling "done".
    with JobStore(state) as second:
        assert second.recover() == 0
        final = second.status(job_id)
        assert final.state == "done"
        assert second.result_bytes(job_id) == b'{"payload":"landed"}\n'
        # The promotion itself was journaled, so a third lifetime agrees
        # without re-deriving anything.
        entries, _ = load_jsonl_tolerant(second.journal_path)
        assert entries[-1]["state"] == "done"


def test_recover_tolerates_a_torn_journal_tail(tmp_path, small_text):
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        record, _ = first.submit("schedule", small_text)
        job_id = record.job_id
    # The crash tore the final append mid-line.
    with open(os.path.join(state, "jobs.jsonl"), "ab") as handle:
        handle.write(b'{"version": 1, "job": "' + job_id.encode()[:8])
    with JobStore(state) as second:
        assert second.recover() == 1
        second.run_until_idle()
        assert second.status(job_id).state == "done"


def test_recover_is_idempotent(tmp_path, small_text):
    state = str(tmp_path / "state")
    with JobStore(state) as first:
        first.submit("schedule", small_text)
    with JobStore(state) as second:
        assert second.recover() == 1
        assert second.recover() == 0  # already loaded; nothing doubles
        assert len(second.jobs()) == 1


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_job_transitions_publish_events(tmp_path, small_text):
    bus = EventBus()
    seen = []
    bus.subscribe(lambda event: seen.append(dict(event)))
    with JobStore(str(tmp_path / "state"), bus=bus) as store:
        record, _ = store.submit("schedule", small_text)
        store.run_until_idle()
    states = [
        event["state"] for event in seen if event["job"] == record.job_id
    ]
    assert states == ["queued", "running", "done"]


def test_store_metrics_cover_the_lifecycle(store):
    record, _ = store.submit("sweep", SMALL_TEXT, {"limit": 4})
    store.run_until_idle()
    counters = store.metrics.snapshot()["counters"]
    assert counters["service_jobs_submitted"] == 1
    assert counters["service_jobs_completed"] == 1
    histograms = store.metrics.snapshot()["histograms"]
    assert histograms["service_job_seconds"]["count"] == 1
    assert record.state == "done"
