"""Canonical cache-key hashing (satellite of docs/service.md).

The service's exactly-once and cache-hit guarantees are only as strong
as the key: semantically identical submissions must collide, any
result-affecting change must not.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Problem, dumps_problem, loads_problem
from repro.errors import ReproError, SpecificationError
from repro.service import JobSpec, cache_key, canonical_problem_text
from repro.workloads.corpus import corpus_system

from .conftest import SMALL_TEXT


def _comment_noise(text: str, seed: int) -> str:
    """Insert comments, blank lines, and trailing spaces — semantics kept."""
    rng = random.Random(seed)
    lines = []
    for line in text.splitlines():
        if rng.random() < 0.4:
            lines.append(f"# noise {rng.randrange(1000)}")
        if rng.random() < 0.3:
            lines.append("")
        lines.append(line + (" " * rng.randrange(3)))
        if rng.random() < 0.2:
            lines.append(f"   # indented comment {rng.randrange(1000)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Insensitive to spelling
# ----------------------------------------------------------------------
def test_whitespace_and_comments_hash_identically():
    base = cache_key("schedule", SMALL_TEXT)
    for seed in range(5):
        assert cache_key("schedule", _comment_noise(SMALL_TEXT, seed)) == base


def test_canonical_text_is_a_fixed_point():
    canonical = canonical_problem_text(SMALL_TEXT)
    assert canonical_problem_text(canonical) == canonical


def test_option_dict_order_is_irrelevant():
    a = cache_key("sweep", SMALL_TEXT, {"limit": 10, "prune": False})
    b = cache_key("sweep", SMALL_TEXT, {"prune": False, "limit": 10})
    assert a == b


def test_empty_and_absent_options_collide():
    assert cache_key("schedule", SMALL_TEXT) == cache_key(
        "schedule", SMALL_TEXT, {}
    )


# ----------------------------------------------------------------------
# Sensitive to meaning
# ----------------------------------------------------------------------
def test_kind_changes_the_key():
    assert cache_key("schedule", SMALL_TEXT) != cache_key(
        "certify", SMALL_TEXT
    )


def test_period_change_changes_the_key():
    changed = SMALL_TEXT.replace("period multiplier 4", "period multiplier 2")
    assert cache_key("schedule", changed) != cache_key(
        "schedule", SMALL_TEXT
    )


def test_deadline_change_changes_the_key():
    changed = SMALL_TEXT.replace("deadline=8", "deadline=9", 1)
    assert cache_key("schedule", changed) != cache_key(
        "schedule", SMALL_TEXT
    )


def test_extra_edge_changes_the_key():
    changed = SMALL_TEXT + "edge p2 main m1 a1\n"
    assert cache_key("schedule", changed) != cache_key(
        "schedule", SMALL_TEXT
    )


def test_library_change_changes_the_key():
    # An explicit library whose adder costs double the default's.
    changed = SMALL_TEXT + (
        "resource adder kinds=add latency=1 area=2\n"
        "resource multiplier kinds=mul latency=2 area=4 pipelined ii=1\n"
    )
    assert cache_key("schedule", changed) != cache_key(
        "schedule", SMALL_TEXT
    )


def test_option_value_changes_the_key():
    assert cache_key("sweep", SMALL_TEXT, {"limit": 10}) != cache_key(
        "sweep", SMALL_TEXT, {"limit": 11}
    )


def test_fault_directive_is_excluded_from_the_key():
    spec_a, key_a = JobSpec.create("schedule", SMALL_TEXT)
    spec_b, key_b = JobSpec.create("schedule", SMALL_TEXT, fault="raise:boom")
    assert key_a == key_b
    assert spec_b.fault == "raise:boom"


# ----------------------------------------------------------------------
# Property sweep over the corpus generator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("processes,seed", [(2, 0), (3, 1), (4, 7)])
def test_corpus_problems_key_stably(processes, seed):
    instance = corpus_system(processes, seed=seed)
    text = dumps_problem(
        Problem(
            system=instance.system,
            library=instance.library,
            assignment=instance.assignment,
            periods=instance.periods,
        )
    )
    base = cache_key("sweep", text, {"limit": 20})
    # Re-spelling the same problem never moves the key...
    for noise_seed in range(3):
        noisy = _comment_noise(text, noise_seed)
        assert loads_problem(noisy).system.name == instance.system.name
        assert cache_key("sweep", noisy, {"limit": 20}) == base
    # ...but touching any period does.
    period_lines = [
        line for line in text.splitlines() if line.startswith("period ")
    ]
    if period_lines:
        name, value = period_lines[0].split()[1:3]
        changed = text.replace(
            f"period {name} {value}", f"period {name} {int(value) * 2}", 1
        )
        assert cache_key("sweep", changed, {"limit": 20}) != base


# ----------------------------------------------------------------------
# Rejections
# ----------------------------------------------------------------------
def test_unparseable_problem_has_no_key():
    with pytest.raises(ReproError):
        cache_key("schedule", "system broken\nop nowhere")


def test_unserializable_options_rejected():
    with pytest.raises(SpecificationError):
        cache_key("schedule", SMALL_TEXT, {"bad": object()})


def test_unknown_option_rejected_at_spec_creation():
    with pytest.raises(SpecificationError) as excinfo:
        JobSpec.create("schedule", SMALL_TEXT, {"tpyo": 1})
    assert excinfo.value.code == "SPEC"


def test_unknown_kind_rejected():
    from repro.service import ServiceError

    with pytest.raises(ServiceError):
        JobSpec.create("meditate", SMALL_TEXT)
