"""HTTP server + thin client: the ``repro serve`` protocol end to end."""

from __future__ import annotations

import json
import time

import pytest

from repro.parallel.retry import RetryPolicy
from repro.service import (
    JobStore,
    LocalSession,
    QueueFullError,
    RemoteSession,
    ServiceClient,
    ServiceError,
    ServiceServer,
    UnknownJobError,
)

from .conftest import SMALL_TEXT


@pytest.fixture
def server(tmp_path):
    store = JobStore(str(tmp_path / "state"))
    with ServiceServer(store, "127.0.0.1:0") as running:
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(server.address, timeout=10.0)


def _wait_for_state(client, job_id, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.status(job_id)["state"] == state:
            return
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {state!r}")


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_submit_wait_result_round_trip(client):
    status = client.submit("schedule", SMALL_TEXT)
    assert status["state"] in ("queued", "running", "done")
    final = client.wait(status["job"], timeout=30.0)
    assert final["state"] == "done"
    payload = json.loads(client.result_bytes(status["job"]))
    assert payload["kind"] == "schedule"
    assert payload["verified"] is True


def test_http_result_matches_local_session(tmp_path, client):
    """Remote bytes are the same function of the key as local bytes."""
    status = client.submit("schedule", SMALL_TEXT)
    client.wait(status["job"], timeout=30.0)
    remote = client.result_bytes(status["job"])
    with LocalSession(str(tmp_path / "local")) as local:
        outcome = local.schedule(SMALL_TEXT)
    assert outcome.job_id == status["job"]
    assert outcome.raw == remote


def test_resubmission_reports_cached(client):
    first = client.submit("schedule", SMALL_TEXT)
    client.wait(first["job"], timeout=30.0)
    again = client.submit("schedule", SMALL_TEXT)
    assert again["cached"] is True
    assert again["job"] == first["job"]


def test_remote_session_round_trip(server, tmp_path):
    with RemoteSession(server.address) as remote:
        outcome = remote.certify(SMALL_TEXT)
    assert outcome.payload["safe"] is True
    # The second run through a fresh session is served from cache.
    with RemoteSession(server.address) as remote:
        assert remote.certify(SMALL_TEXT).cached


def test_unix_socket_round_trip(tmp_path):
    store = JobStore(str(tmp_path / "state"))
    sock = str(tmp_path / "serve.sock")
    with ServiceServer(store, sock) as running:
        assert running.address == sock
        client = ServiceClient(sock, timeout=10.0)
        status = client.submit("schedule", SMALL_TEXT)
        final = client.wait(status["job"], timeout=30.0)
        assert final["state"] == "done"
        assert client.health()["ok"] is True


# ----------------------------------------------------------------------
# Errors over the wire
# ----------------------------------------------------------------------
def test_unknown_job_is_404(client):
    with pytest.raises(UnknownJobError):
        client.status("no-such-job")
    with pytest.raises(UnknownJobError):
        client.result_bytes("no-such-job")


def test_invalid_problem_is_400_with_code(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit("schedule", "system broken\nop nowhere")
    assert "SPEC" in str(excinfo.value)


def test_result_before_done_is_409(client):
    status = client.submit("schedule", SMALL_TEXT, fault="sleep:3")
    with pytest.raises(ServiceError):
        client.result_bytes(status["job"])
    client.cancel(status["job"])


def test_queue_full_is_429(tmp_path):
    store = JobStore(
        str(tmp_path / "state"),
        queue_limit=1,
        retry_policy=RetryPolicy(max_attempts=1),
    )
    with ServiceServer(store, "127.0.0.1:0", workers=1) as running:
        client = ServiceClient(running.address, timeout=10.0)
        # A occupies the single worker...
        a = client.submit("schedule", SMALL_TEXT, fault="sleep:5")
        _wait_for_state(client, a["job"], "running")
        # ...B fills the queue (a different key: certify)...
        client.submit("certify", SMALL_TEXT)
        # ...so C bounces with BUSY.
        with pytest.raises(QueueFullError):
            client.submit("sweep", SMALL_TEXT, {"limit": 2})
        for status in client.jobs():
            client.cancel(status["job"])


def test_delete_cancels_a_queued_job(tmp_path):
    store = JobStore(str(tmp_path / "state"))
    with ServiceServer(store, "127.0.0.1:0", workers=1) as running:
        client = ServiceClient(running.address, timeout=10.0)
        blocker = client.submit("schedule", SMALL_TEXT, fault="sleep:5")
        _wait_for_state(client, blocker["job"], "running")
        queued = client.submit("certify", SMALL_TEXT)
        assert client.cancel(queued["job"]) is True
        assert client.status(queued["job"])["state"] == "cancelled"
        client.cancel(blocker["job"])


# ----------------------------------------------------------------------
# Observability endpoints
# ----------------------------------------------------------------------
def test_healthz_and_metrics(client):
    health = client.health()
    assert health["ok"] is True
    status = client.submit("schedule", SMALL_TEXT)
    client.wait(status["job"], timeout=30.0)
    text = client.metrics_text()
    assert "service_jobs_submitted" in text
    assert "service_jobs_completed" in text


def test_unknown_endpoint_is_404(client):
    with pytest.raises(ServiceError):
        client._json("GET", "/v2/nothing")
