"""Chaos harness: kill the server mid-sweep, restart, finish exactly-once.

The acceptance bar of docs/service.md: under every injected failure —
``SIGKILL``, a hard ``os._exit`` crash, a hung attempt, a corrupted
sweep journal — a restarted server resumes the in-flight job, evaluates
no candidate twice, and converges to payload bytes identical to an
uninterrupted run of the same spec.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.parallel.checkpoint import candidate_key, load_jsonl_tolerant
from repro.service import LocalSession, ServiceClient, ServiceError, cache_key

from .conftest import SMALL_TEXT

#: The chaos workload: a sweep slow enough (0.4 s per evaluated
#: candidate) that a kill reliably lands between candidates.  The delay
#: is part of the cache key, so the uninterrupted reference run must use
#: the identical options.
SWEEP_OPTIONS = {"limit": 6, "candidate_delay": 0.4}

JOB_ID = cache_key("sweep", SMALL_TEXT, SWEEP_OPTIONS)


@pytest.fixture(scope="module")
def reference_bytes():
    """The uninterrupted serial run every chaotic run must reproduce."""
    with LocalSession() as session:
        outcome = session.sweep(SMALL_TEXT, SWEEP_OPTIONS)
    assert outcome.job_id == JOB_ID
    return outcome.raw


def _submit_sweep(address: str) -> str:
    client = ServiceClient(address, timeout=10.0)
    try:
        status = client.submit("sweep", SMALL_TEXT, SWEEP_OPTIONS)
        return str(status["job"])
    except ServiceError:
        # The injected crash can kill the server between journaling the
        # job (fsync-before-ack) and answering; the job id is knowable
        # anyway — it is the cache key.
        return JOB_ID


def _sweep_journal_path(state_dir: str, job_id: str) -> str:
    return os.path.join(state_dir, "sweeps", f"{job_id}.jsonl")


def _wait_for_candidates(path: str, count: int, timeout: float = 20.0) -> None:
    """Block until ``count`` candidate records are durably journaled."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            records, _ = load_jsonl_tolerant(path)
            if len(records) >= count:
                return
        time.sleep(0.02)
    raise AssertionError(f"never saw {count} journaled candidate(s)")


def _finish_and_check(proc, job_id: str, reference: bytes) -> None:
    """Wait for the job on ``proc``, then assert the exactly-once bar."""
    client = ServiceClient(proc.address, timeout=10.0)
    final = client.wait(job_id, timeout=120.0)
    assert final["state"] == "done", final
    assert client.result_bytes(job_id) == reference
    # Exactly-once at candidate granularity: the sweep journal holds
    # each candidate at most once, covering the whole sweep.
    records, _ = load_jsonl_tolerant(
        _sweep_journal_path(proc.state_dir, job_id)
    )
    keys = [candidate_key(r["periods"]) for r in records]
    assert len(keys) == len(set(keys)), "a candidate was evaluated twice"
    assert len(keys) == json.loads(reference)["total"]
    # Resubmission is answered from the durable cache, byte-identically.
    resubmit = client.submit("sweep", SMALL_TEXT, SWEEP_OPTIONS)
    assert resubmit["cached"] is True
    assert client.result_bytes(job_id) == reference


def test_sigkill_mid_sweep_resumes_exactly_once(
    serve_factory, reference_bytes
):
    first = serve_factory()
    job_id = _submit_sweep(first.address)
    journal = _sweep_journal_path(first.state_dir, job_id)
    # Let some candidates land, then pull the plug with no warning.
    _wait_for_candidates(journal, 1)
    first.sigkill()
    restarted = serve_factory()  # same state dir; recovery is startup
    _finish_and_check(restarted, job_id, reference_bytes)


def test_hard_exit_crash_resumes_exactly_once(
    serve_factory, reference_bytes
):
    # The fault plan os._exit(3)s the whole server on the job's first
    # attempt — the crash is the server's own worker, not an outside
    # signal.
    crashing = serve_factory("--inject-fault", "exit:3@1")
    job_id = _submit_sweep(crashing.address)
    assert crashing.wait_exit() == 3
    restarted = serve_factory()
    _finish_and_check(restarted, job_id, reference_bytes)


def test_hung_attempt_times_out_and_retries(
    serve_factory, reference_bytes
):
    # Attempt 1 hangs far past the per-attempt budget; the worker
    # abandons it and attempt 2 completes — no restart needed.  The
    # budget leaves a clean attempt (~2 s of candidate delays) room.
    proc = serve_factory(
        "--job-timeout", "5.0", "--inject-fault", "hang:30@1"
    )
    job_id = _submit_sweep(proc.address)
    _finish_and_check(proc, job_id, reference_bytes)
    client = ServiceClient(proc.address, timeout=10.0)
    assert client.status(job_id)["attempts"] == 2


def test_corrupted_sweep_journal_still_resumes(
    serve_factory, reference_bytes
):
    # corrupt-journal garbles the sweep journal before the candidates
    # run; SIGKILL then tears the run mid-sweep.  Recovery must read
    # around the garbage line and still not repeat a candidate.
    chaotic = serve_factory("--inject-fault", "corrupt-journal@1")
    job_id = _submit_sweep(chaotic.address)
    journal = _sweep_journal_path(chaotic.state_dir, job_id)
    _wait_for_candidates(journal, 1)
    chaotic.sigkill()
    _, dropped = load_jsonl_tolerant(journal)
    assert dropped >= 1, "the fault should have garbled the journal"
    restarted = serve_factory()
    _finish_and_check(restarted, job_id, reference_bytes)
