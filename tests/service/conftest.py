"""Shared fixtures for the scheduling-service tests."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

import repro

SMALL_TEXT = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
global multiplier p1 p2
global adder p1 p2
period multiplier 4
period adder 4
"""


@pytest.fixture
def small_text() -> str:
    return SMALL_TEXT


@pytest.fixture
def store(tmp_path):
    """A throwaway JobStore over a temp state dir."""
    from repro.service import JobStore

    with JobStore(str(tmp_path / "state")) as job_store:
        yield job_store


def _src_pythonpath() -> str:
    """PYTHONPATH that lets a subprocess import the in-tree ``repro``."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH")
    return src + (os.pathsep + existing if existing else "")


class ServeProcess:
    """A ``repro serve`` child process plus its parsed address."""

    def __init__(self, state_dir: str, *extra_args: str) -> None:
        self.state_dir = str(state_dir)
        self.extra_args = extra_args
        self.process = None
        self.address = None

    def start(self) -> "ServeProcess":
        env = dict(os.environ, PYTHONPATH=_src_pythonpath())
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--state",
                self.state_dir,
                "--address",
                "127.0.0.1:0",
                *self.extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        # The daemon prints "repro serve: listening on HOST:PORT ..."
        # once it is ready; the ephemeral port only exists in that line.
        deadline = time.monotonic() + 30
        line = ""
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "listening on" in line:
                break
            if self.process.poll() is not None:
                raise RuntimeError(
                    "repro serve exited before binding: "
                    + (line + (self.process.stdout.read() or ""))
                )
        else:  # pragma: no cover - diagnostics
            raise RuntimeError("repro serve never reported its address")
        self.address = line.split("listening on", 1)[1].split()[0]
        return self

    def sigkill(self) -> None:
        """SIGKILL the daemon — the crash the journals must survive."""
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10)

    def wait_exit(self, timeout: float = 30.0) -> int:
        return self.process.wait(timeout=timeout)

    def stop(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait(timeout=10)
        if self.process is not None and self.process.stdout:
            self.process.stdout.close()


@pytest.fixture
def serve_factory(tmp_path):
    """Start ``repro serve`` subprocesses; all stopped at teardown."""
    started = []

    def factory(*extra_args: str, state: str = "state") -> ServeProcess:
        proc = ServeProcess(str(tmp_path / state), *extra_args).start()
        started.append(proc)
        return proc

    yield factory
    for proc in started:
        proc.stop()
