"""Property-based tests (hypothesis) on core invariants.

These cover the library's load-bearing guarantees on randomized inputs:
frame consistency, probability-mass conservation, modulo-max dominance,
schedule validity, the global-pool upper bound, and end-to-end safety
(verification, binding, simulation) on random multi-process systems.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.binding.instances import bind_instances
from repro.core.modulo import modulo_max, modulo_max_int
from repro.core.periods import PeriodAssignment, divisors, is_harmonic, lcm_all
from repro.core.scheduler import ModuloSystemScheduler
from repro.core.verify import verify_system_schedule
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.distribution import occupancy_row
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.scheduling.timeframes import FrameTable
from repro.sim.simulator import SystemSimulator
from repro.workloads import random_dfg

LIBRARY = default_library()


# ---------------------------------------------------------------------------
# Numeric helpers
# ---------------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=10_000))
def test_divisors_divide_and_include_bounds(value):
    divs = divisors(value)
    assert divs[0] == 1
    assert divs[-1] == value
    assert all(value % d == 0 for d in divs)
    assert divs == sorted(set(divs))


@given(st.lists(st.integers(min_value=1, max_value=50), max_size=5))
def test_lcm_is_common_multiple(values):
    lcm = lcm_all(values)
    assert all(lcm % v == 0 for v in values)
    if values:
        assert lcm <= math.prod(values)


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=5))
def test_harmonic_iff_lcm_equals_max(values):
    if is_harmonic(values):
        assert lcm_all(values) == max(values)


# ---------------------------------------------------------------------------
# Occupancy rows
# ---------------------------------------------------------------------------
@given(
    lo=st.integers(min_value=0, max_value=10),
    width=st.integers(min_value=1, max_value=8),
    occ=st.integers(min_value=1, max_value=3),
)
def test_occupancy_row_mass_and_support(lo, width, occ):
    hi = lo + width - 1
    horizon = hi + occ
    row = occupancy_row(lo, hi, occ, horizon)
    assert row.sum() == pytest.approx(occ)
    assert (row >= 0).all()
    assert (row <= 1.0 + 1e-12).all()
    assert row[:lo].sum() == 0.0


# ---------------------------------------------------------------------------
# Modulo-max transformation
# ---------------------------------------------------------------------------
@given(
    values=st.lists(
        st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=40
    ),
    period=st.integers(min_value=1, max_value=20),
)
def test_modulo_max_dominates_and_preserves_peak(values, period):
    folded = modulo_max(values, period)
    for t, value in enumerate(values):
        assert folded[t % period] >= value - 1e-9
    assert folded.max() == pytest.approx(max(values))


@given(
    values=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40),
    period=st.integers(min_value=1, max_value=20),
)
def test_modulo_max_int_matches_float_variant(values, period):
    assert (
        modulo_max_int(values, period) == modulo_max(values, period).astype(int)
    ).all()


# ---------------------------------------------------------------------------
# Frame tables on random DAGs
# ---------------------------------------------------------------------------
@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_ops=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=1_000),
    slack=st.integers(min_value=0, max_value=6),
)
def test_frames_consistent_on_random_dags(n_ops, seed, slack):
    graph = random_dfg(n_ops, seed=seed)
    deadline = graph.critical_path_length(LIBRARY.latency_of) + slack
    table = FrameTable(graph, LIBRARY.latency_of, deadline)
    for oid in graph.op_ids:
        lo, hi = table.frame(oid)
        assert 0 <= lo <= hi
        assert hi + table.latency(oid) <= deadline
        for pred in graph.predecessors(oid):
            assert table.lo(pred) + table.latency(pred) <= lo
        for succ in graph.successors(oid):
            assert hi + table.latency(oid) <= table.hi(succ)


# ---------------------------------------------------------------------------
# IFDS schedules on random DAGs
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_ops=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=500),
    slack=st.integers(min_value=0, max_value=5),
)
def test_ifds_schedules_random_dags_validly(n_ops, seed, slack):
    graph = random_dfg(n_ops, seed=seed)
    deadline = graph.critical_path_length(LIBRARY.latency_of) + slack
    block = Block(name="b", graph=graph, deadline=deadline)
    schedule = ImprovedForceDirectedScheduler(LIBRARY).schedule(block)
    schedule.validate()
    # Peak usage can never beat the averaging lower bound.
    for rtype in LIBRARY.types_used_by(graph):
        busy = int(schedule.usage_profile(rtype.name).sum())
        assert schedule.peak_usage(rtype.name) >= math.ceil(busy / deadline)


# ---------------------------------------------------------------------------
# End-to-end: random two-process systems
# ---------------------------------------------------------------------------
def _random_system(n1, n2, seed, slack):
    system = SystemSpec(name="rand")
    for name, n_ops, offset in (("p1", n1, 0), ("p2", n2, 1)):
        graph = random_dfg(n_ops, seed=seed + offset)
        deadline = graph.critical_path_length(LIBRARY.latency_of) + slack
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    return system


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n1=st.integers(min_value=2, max_value=10),
    n2=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=200),
    period=st.integers(min_value=1, max_value=4),
)
def test_global_scheduling_end_to_end_on_random_systems(n1, n2, seed, period):
    system = _random_system(n1, n2, seed, slack=4)
    assignment = ResourceAssignment.all_global(LIBRARY, system)
    if not assignment.global_types:
        return  # no shared kinds this draw
    periods = PeriodAssignment({t: period for t in assignment.global_types})
    result = ModuloSystemScheduler(LIBRARY).schedule(system, assignment, periods)

    # Static verification must hold.
    report = verify_system_schedule(result)
    assert report.ok, str(report)

    # The global pool can never exceed the sum of per-process folded maxima
    # and never exceed what fully local scheduling would buy.
    for type_name in assignment.global_types:
        pool = result.global_instances(type_name)
        per_process = sum(
            int(result.authorization(p, type_name).max())
            for p in assignment.group(type_name)
        )
        assert pool <= per_process

    # Binding and randomized simulation must both be conflict-free.
    bind_instances(result).validate()
    stats = SystemSimulator(result, seed=seed).run(300)
    assert stats.ok, stats.trace.render()
