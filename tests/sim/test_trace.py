"""Tests for simulation trace records."""

from repro.sim.trace import Activation, Trace, Violation


def act(process="p1", requested=3, started=5, finished=10):
    return Activation(
        process=process,
        block="main",
        requested_at=requested,
        started_at=started,
        finished_at=finished,
    )


class TestActivation:
    def test_grid_wait(self):
        assert act(requested=3, started=5).grid_wait == 2
        assert act(requested=5, started=5).grid_wait == 0


class TestTrace:
    def test_activations_of_filters_by_process(self):
        trace = Trace(activations=[act("p1"), act("p2"), act("p1")])
        assert len(trace.activations_of("p1")) == 2
        assert len(trace.activations_of("p3")) == 0

    def test_mean_grid_wait(self):
        trace = Trace(activations=[act(requested=0, started=2),
                                   act(requested=0, started=4)])
        assert trace.mean_grid_wait == 3.0

    def test_mean_grid_wait_empty(self):
        assert Trace().mean_grid_wait == 0.0

    def test_render_limits_output(self):
        trace = Trace(activations=[act() for _ in range(30)])
        text = trace.render(limit=5)
        assert "25 more activations" in text

    def test_render_shows_violations(self):
        trace = Trace(violations=[Violation(cycle=7, type_name="adder", detail="x")])
        assert "VIOLATION at cycle 7" in trace.render()
