"""Tests for the cycle-accurate multi-process simulator."""

import pytest

from repro.errors import SimulationError
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.sim.simulator import SystemSimulator


def shared_adder_result(repeats=False):
    library = default_library()
    system = SystemSpec(name="s")
    for name, n_ops in (("p1", 2), ("p2", 1)):
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_ops):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(
            Block(name="main", graph=graph, deadline=4, repeats=repeats)
        )
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": 2})
    )


class TestSimulator:
    def test_no_violations_across_seeds(self):
        result = shared_adder_result()
        for seed in range(10):
            stats = SystemSimulator(result, seed=seed).run(500)
            assert stats.ok, stats.trace.render()

    def test_peak_usage_within_pool(self):
        result = shared_adder_result()
        stats = SystemSimulator(result, seed=3).run(1000)
        for type_name, peak in stats.peak_usage.items():
            assert peak <= stats.pool_sizes.get(type_name, 0)

    def test_block_starts_are_grid_aligned(self):
        result = shared_adder_result()
        stats = SystemSimulator(result, seed=1, trigger_probability=0.8).run(400)
        grid = result.grid_spacing("p1")
        for activation in stats.trace.activations:
            assert activation.started_at % grid == 0
            assert activation.started_at >= activation.requested_at

    def test_activations_happen(self):
        stats = SystemSimulator(shared_adder_result(), seed=5).run(400)
        assert all(count > 0 for count in stats.activations.values())

    def test_repeating_blocks_simulate(self):
        stats = SystemSimulator(shared_adder_result(repeats=True), seed=7).run(600)
        assert stats.ok
        assert sum(stats.activations.values()) > 2

    def test_deterministic_per_seed(self):
        result = shared_adder_result()
        s1 = SystemSimulator(result, seed=11).run(300)
        s2 = SystemSimulator(result, seed=11).run(300)
        assert s1.activations == s2.activations
        assert s1.busy_cycles == s2.busy_cycles

    def test_different_seeds_differ(self):
        result = shared_adder_result()
        s1 = SystemSimulator(result, seed=1, trigger_probability=0.3).run(300)
        s2 = SystemSimulator(result, seed=2, trigger_probability=0.3).run(300)
        assert s1.activations != s2.activations or s1.busy_cycles != s2.busy_cycles

    def test_utilization_in_unit_range(self):
        stats = SystemSimulator(shared_adder_result(), seed=0).run(500)
        for type_name in stats.pool_sizes:
            assert 0.0 <= stats.utilization(type_name) <= 1.0

    def test_per_run_seed_override(self):
        """One simulator can drive a multi-seed campaign reproducibly."""
        result = shared_adder_result()
        simulator = SystemSimulator(result, seed=0)
        first = simulator.run(300, seed=7)
        assert first.seed == 7  # stats report the seed actually used
        again = simulator.run(300, seed=7)
        assert again.activations == first.activations
        assert again.busy_cycles == first.busy_cycles
        # No override falls back to the constructor seed, unaffected by
        # the earlier overridden runs.
        plain = simulator.run(300)
        assert plain.seed == 0
        assert plain.activations == SystemSimulator(result, seed=0).run(
            300
        ).activations

    def test_invalid_cycles_rejected(self):
        with pytest.raises(SimulationError, match=">= 1"):
            SystemSimulator(shared_adder_result(), seed=0).run(0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(SimulationError, match="probability"):
            SystemSimulator(shared_adder_result(), trigger_probability=0.0)

    def test_tampered_execution_detected(self):
        """A block that runs off its authorized slots must be flagged."""
        import numpy as np

        result = shared_adder_result()
        simulator = SystemSimulator(result, seed=0, trigger_probability=0.9)
        # Corrupt the cached execution profile of p1: shift its adder usage
        # by one step, so it executes on p2's authorized slot.
        model = simulator._states["p1"].blocks[0]
        model.unguarded["adder"] = np.roll(model.unguarded["adder"], 1)
        stats = simulator.run(400)
        assert not stats.ok
        assert any(v.type_name == "adder" for v in stats.trace.violations)

    def test_summary_renders(self):
        stats = SystemSimulator(shared_adder_result(), seed=0).run(100)
        text = stats.summary()
        assert "violations" in text
        assert "p1" in text
