"""Tests for RunBudget / BudgetTracker watchdog semantics."""

import time

import pytest

from repro.validation.budget import BudgetTracker, RunBudget


class TestRunBudget:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            RunBudget(max_iterations=0)
        with pytest.raises(ValueError):
            RunBudget(wall_deadline=-1.0)
        with pytest.raises(ValueError):
            RunBudget(max_iterations=10, oscillation_window=-1)

    def test_zero_window_disables_oscillation_detection(self):
        tracker = RunBudget(
            max_iterations=100, oscillation_window=0
        ).tracker()
        for _ in range(10):
            assert tracker.tick(state_hash=42) is None

    def test_tracker_is_fresh_per_call(self):
        budget = RunBudget(max_iterations=2)
        first = budget.tracker()
        assert first.tick() is None
        assert first.tick() is None
        assert first.tick() is not None
        second = budget.tracker()
        assert second.tick() is None


class TestIterationBudget:
    def test_exhausts_after_max_iterations(self):
        tracker = RunBudget(max_iterations=3).tracker()
        reasons = [tracker.tick() for _ in range(4)]
        assert reasons[:3] == [None, None, None]
        assert "iteration budget exhausted (3)" in reasons[3]

    def test_reason_is_sticky(self):
        tracker = RunBudget(max_iterations=1).tracker()
        tracker.tick()
        reason = tracker.tick()
        assert reason is not None
        assert tracker.tick() == reason
        assert tracker.exhausted_reason == reason


class TestWallDeadline:
    def test_expires_with_time(self):
        tracker = RunBudget(wall_deadline=0.01).tracker()
        time.sleep(0.02)
        reason = tracker.tick()
        assert reason is not None
        assert "wall-clock budget exhausted" in reason


class TestOscillation:
    def test_state_revisit_is_flagged(self):
        tracker = RunBudget(
            max_iterations=100, oscillation_window=8
        ).tracker()
        assert tracker.tick(state_hash=1) is None
        assert tracker.tick(state_hash=2) is None
        reason = tracker.tick(state_hash=1)
        assert reason is not None
        assert "oscillation" in reason

    def test_old_states_fall_out_of_the_window(self):
        tracker = RunBudget(
            max_iterations=1000, oscillation_window=2
        ).tracker()
        assert tracker.tick(state_hash=1) is None
        assert tracker.tick(state_hash=2) is None
        assert tracker.tick(state_hash=3) is None  # evicts 1
        assert tracker.tick(state_hash=1) is None  # not a revisit anymore

    def test_monotone_progress_never_trips(self):
        tracker = RunBudget(
            max_iterations=1000, oscillation_window=64
        ).tracker()
        for step in range(200):
            assert tracker.tick(state_hash=step) is None
