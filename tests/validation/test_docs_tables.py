"""Drift test: the diagnostic-code tables embedded in the docs must
match the registry exactly (regenerate with
``python -m repro.validation.diagnostics --table``)."""

import os
import re
import subprocess
import sys

import pytest

import repro
from repro.validation.diagnostics import codes_table

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
)

BEGIN = (
    "<!-- BEGIN diagnostic-codes "
    "(generated: python -m repro.validation.diagnostics --table) -->"
)
END = "<!-- END diagnostic-codes -->"

DOCS = ["docs/robustness.md", "docs/static-analysis.md"]


def embedded_table(path: str) -> str:
    text = open(os.path.join(REPO_ROOT, path), encoding="utf-8").read()
    match = re.search(re.escape(BEGIN) + r"\n(.*?)\n" + re.escape(END), text, re.S)
    assert match, f"{path} is missing the diagnostic-codes markers"
    return match.group(1)


@pytest.mark.parametrize("path", DOCS)
def test_docs_table_matches_the_registry(path):
    assert embedded_table(path) == codes_table(), (
        f"{path} has drifted from the registry; regenerate the block "
        "with `python -m repro.validation.diagnostics --table`"
    )


def test_table_subcommand_emits_the_table():
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.validation.diagnostics", "--table"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0
    assert proc.stdout.strip() == codes_table()
