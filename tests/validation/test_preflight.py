"""Preflight validation over a corpus of seeded defects.

Acceptance criterion of the robustness PR: ``repro check`` flags every
seeded defect with its stable diagnostic code.  Each corpus entry pairs
one defective document with the code it must trigger.
"""

import pytest

from repro.validation import validate_path, validate_text

VALID = """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
edge p1 main a1 m1
process p2
block p2 main deadline=8
op p2 main m1 mul
op p2 main a1 add
edge p2 main m1 a1
global multiplier p1 p2
period multiplier 4
"""

#: defect name -> (document text, diagnostic code it must raise)
SEEDED_DEFECTS = {
    "parse-failure": (
        "system demo\nblock p1 main deadline=8\n",  # block before process
        "SYS001",
    ),
    "no-processes": ("system empty\n", "SYS002"),
    "graph-cycle": (
        """\
system demo
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main a2 add
edge p1 main a1 a2
edge p1 main a2 a1
""",
        "GRAPH001",
    ),
    "uncovered-kind": (
        """\
system demo
resource adder kinds=add area=1
process p1
block p1 main deadline=8
op p1 main a1 add
op p1 main m1 mul
""",
        "LIB001",
    ),
    "infeasible-deadline": (
        """\
system demo
process p1
block p1 main deadline=2
op p1 main a1 add
op p1 main a2 add
op p1 main a3 add
edge p1 main a1 a2
edge p1 main a2 a3
""",
        "TIME001",
    ),
    "unknown-process-in-scope": (
        VALID.replace("global multiplier p1 p2", "global multiplier p1 p9"),
        "SCOPE001",
    ),
    "unknown-type-in-scope": (
        VALID.replace("global multiplier p1 p2", "global divider p1 p2")
        .replace("period multiplier 4", "period divider 4"),
        "SCOPE004",
    ),
    "member-never-uses-type": (
        """\
system demo
process p1
block p1 main deadline=8
op p1 main m1 mul
process p2
block p2 main deadline=8
op p2 main a1 add
global multiplier p1 p2
period multiplier 4
""",
        "SCOPE003",
    ),
    "period-for-nonglobal": (
        VALID + "period adder 4\n",
        "PERIOD001",
    ),
}

SEEDED_WARNINGS = {
    "unused-resource": (
        """\
system demo
resource adder kinds=add area=1
resource divider kinds=div area=8
process p1
block p1 main deadline=8
op p1 main a1 add
""",
        "LIB101",
    ),
    "non-harmonic-periods": (
        VALID.replace("op p2 main a1 add", "op p2 main a1 add")
        + "global adder p1 p2\nperiod adder 3\n",
        "PERIOD101",
    ),
    "period-exceeds-deadline": (
        VALID.replace("period multiplier 4", "period multiplier 16"),
        "PERIOD103",
    ),
}


def test_valid_document_is_clean():
    report = validate_text(VALID)
    assert report.ok
    assert report.exit_code == 0
    assert not report.diagnostics


@pytest.mark.parametrize(
    "text,code", SEEDED_DEFECTS.values(), ids=list(SEEDED_DEFECTS)
)
def test_seeded_defects_flagged_with_stable_code(text, code):
    report = validate_text(text)
    assert report.has(code), (
        f"expected {code}, got {report.codes}\n{report.render()}"
    )
    assert not report.ok
    assert report.exit_code == 2


@pytest.mark.parametrize(
    "text,code", SEEDED_WARNINGS.values(), ids=list(SEEDED_WARNINGS)
)
def test_seeded_warnings_flagged_but_not_fatal(text, code):
    report = validate_text(text)
    assert report.has(code), (
        f"expected {code}, got {report.codes}\n{report.render()}"
    )
    assert report.ok  # warnings never veto a run
    assert report.exit_code == 1


def test_missing_period_is_a_note_with_suggestion():
    text = VALID.replace("period multiplier 4\n", "")
    report = validate_text(text)
    assert report.has("PERIOD201")
    assert report.exit_code == 0 or report.exit_code == 1
    note = next(d for d in report.diagnostics if d.code == "PERIOD201")
    assert note.hint  # suggests a concrete period


def test_validate_path_carries_source_name(tmp_path):
    path = tmp_path / "demo.sys"
    path.write_text(VALID, encoding="utf-8")
    report = validate_path(path)
    assert report.ok
    assert "demo.sys" in report.source


def test_examples_are_clean():
    """The shipped examples must stay preflight-clean (CI lints them)."""
    import pathlib

    examples = pathlib.Path(__file__).resolve().parents[2] / "examples"
    for path in sorted(examples.glob("*.sys")):
        report = validate_path(path)
        assert report.ok, f"{path.name}:\n{report.render()}"
