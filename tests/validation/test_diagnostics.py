"""Tests for the diagnostic code registry and report mechanics."""

import pytest

from repro.validation.diagnostics import (
    CODES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    DiagnosticReport,
)


class TestRegistry:
    def test_every_code_has_severity_and_title(self):
        for code, entry in CODES.items():
            assert entry["severity"] in (
                SEVERITY_ERROR,
                SEVERITY_WARNING,
                SEVERITY_INFO,
            ), code
            assert entry["title"], code

    def test_numbering_convention_matches_severity(self):
        """Sub-100 numbers are errors, 1xx warnings, 2xx notes.

        The 3xx block (residue-pressure analysis) is exempt: those codes
        carry per-code severities, graded by proven slack.
        """
        for code, entry in CODES.items():
            number = int(code[-3:])
            if number >= 300:
                assert entry["severity"] in (SEVERITY_WARNING, SEVERITY_INFO), code
            elif number < 100:
                assert entry["severity"] == SEVERITY_ERROR, code
            elif number < 200:
                assert entry["severity"] == SEVERITY_WARNING, code
            else:
                assert entry["severity"] == SEVERITY_INFO, code

    def test_unregistered_code_is_rejected(self):
        report = DiagnosticReport()
        with pytest.raises(KeyError, match="unregistered"):
            report.add("NOPE999", "made up")


class TestDiagnostic:
    def test_location_path(self):
        d = Diagnostic(code="LIB001", message="m", process="p1", block="main")
        assert d.location == "p1/main"
        assert Diagnostic(code="SYS002", message="m").location == ""

    def test_render_includes_hint(self):
        d = Diagnostic(
            code="TIME001", message="too long", hint="raise the deadline"
        )
        text = d.render()
        assert "TIME001" in text
        assert "hint: raise the deadline" in text


class TestReport:
    def test_exit_codes(self):
        clean = DiagnosticReport()
        assert (clean.ok, clean.exit_code) == (True, 0)
        warn = DiagnosticReport()
        warn.add("LIB101", "unused")
        assert (warn.ok, warn.exit_code) == (True, 1)
        err = DiagnosticReport()
        err.add("LIB101", "unused")
        err.add("SYS002", "empty")
        assert (err.ok, err.exit_code) == (False, 2)

    def test_severity_pulled_from_registry(self):
        report = DiagnosticReport()
        d = report.add("PERIOD201", "no period")
        assert d.severity == SEVERITY_INFO

    def test_render_orders_errors_first(self):
        report = DiagnosticReport(source="x.sys")
        report.add("PERIOD201", "note first")
        report.add("SYS002", "error second")
        text = report.render()
        assert text.index("SYS002") < text.index("PERIOD201")
        assert "1 errors, 0 warnings, 1 notes" in text

    def test_has_and_codes(self):
        report = DiagnosticReport()
        report.add("SCOPE002", "tiny group")
        assert report.has("SCOPE002")
        assert not report.has("SCOPE001")
        assert report.codes == ["SCOPE002"]
