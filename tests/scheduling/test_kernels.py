"""Property tests for the batched force kernels (docs/performance.md).

The kernels promise two different strengths of agreement with the
scalar reference path, and these tests pin both:

* **bit-exact** — occupancy rows, modulo folds, and ``DeltaBatch``
  displacement rows are elementwise constructions and must equal the
  scalar results bit for bit, on arbitrary frames, occupancies, and
  periods (``assert_array_equal``, no tolerance);
* **decision-level** — force totals go through batched matrix products
  whose BLAS summation order may differ from the scalar ``np.dot``
  sequence by ulps; they are compared against an epsilon far below the
  ``1e-12`` decision threshold every scheduler uses.

Edge cases named by the kernel contracts are covered explicitly:
empty candidate batches, single-slot frames, occupancy wider than the
frame, guarded (modal) fallback, and dtype stability.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from numpy.testing import assert_array_equal

from repro.core.modulo import modulo_max_reference, modulo_max_rows
from repro.errors import SchedulingError
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.distribution import occupancy_row
from repro.scheduling.forces import placement_force
from repro.scheduling.kernels import (
    DeltaBatch,
    PlacementKernel,
    batched_occupancy_rows,
    guarded_footprint_ops,
    row_dots,
    row_self_dots,
)
from repro.scheduling.state import BlockState
from repro.workloads import mode_switching_filter, random_dfg

LIBRARY = default_library()

#: Decisions compare forces against 1e-12; batching noise is ~1e-16.
DECISION_EPS = 1e-12


def random_state(seed, ops=8, slack=5):
    """A BlockState over a random DFG with a feasible deadline."""
    graph = random_dfg(ops, seed=seed)
    deadline = graph.critical_path_length(LIBRARY.latency_of) + slack
    return BlockState(Block(name=f"b{seed}", graph=graph, deadline=deadline), LIBRARY)


def scrambled_state(seed, reductions=3):
    """A random state after a few committed reductions (mixed frames)."""
    state = random_state(seed)
    rng = np.random.default_rng(seed)
    for _ in range(reductions):
        mobile = state.frames.unfixed()
        if not mobile:
            break
        op_id = mobile[int(rng.integers(len(mobile)))]
        lo, hi = state.frames.frame(op_id)
        if rng.integers(2):
            state.commit_reduce_effect(op_id, lo + 1, hi)
        else:
            state.commit_reduce_effect(op_id, lo, hi - 1)
    return state


# ---------------------------------------------------------------------------
# batched_occupancy_rows
# ---------------------------------------------------------------------------
frame_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),  # lo offset
        st.integers(min_value=0, max_value=12),  # frame width - 1
        st.integers(min_value=1, max_value=6),  # occupancy
    ),
    min_size=1,
    max_size=12,
)


@given(frames=frame_lists)
@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
def test_batched_occupancy_rows_bit_match_scalar(frames):
    los = [lo for lo, width, _occ in frames]
    his = [lo + width for lo, width, _occ in frames]
    occs = [occ for _lo, _width, occ in frames]
    horizon = max(hi + occ for hi, occ in zip(his, occs))
    batched = batched_occupancy_rows(los, his, occs, horizon)
    assert batched.shape == (len(frames), horizon)
    assert batched.dtype == np.float64
    for i, (lo, hi, occ) in enumerate(zip(los, his, occs)):
        assert_array_equal(batched[i], occupancy_row(lo, hi, occ, horizon))


def test_batched_occupancy_scalar_occupancy_and_out_buffer():
    los, his = [0, 2, 5], [4, 2, 9]
    horizon = 12
    out = np.full((5, horizon), np.nan)
    batched = batched_occupancy_rows(los, his, 3, horizon, out=out)
    assert batched.base is out or batched is out[:3]
    for i, (lo, hi) in enumerate(zip(los, his)):
        assert_array_equal(batched[i], occupancy_row(lo, hi, 3, horizon))
    # validate=False takes the unchecked internal path, same values.
    assert_array_equal(
        batched_occupancy_rows(los, his, 3, horizon, validate=False), batched
    )


def test_batched_occupancy_single_slot_and_wider_than_frame():
    # Single-slot frame (lo == hi) with occupancy wider than the frame:
    # the sliding window clips exactly like the scalar row.
    assert_array_equal(
        batched_occupancy_rows([3], [3], 4, 10)[0], occupancy_row(3, 3, 4, 10)
    )


def test_batched_occupancy_empty_batch():
    rows = batched_occupancy_rows([], [], 2, 8)
    assert rows.shape == (0, 8)


def test_batched_occupancy_rejects_bad_frames():
    with pytest.raises(SchedulingError):
        batched_occupancy_rows([3], [2], 1, 8)  # empty frame
    with pytest.raises(SchedulingError):
        batched_occupancy_rows([0], [7], 2, 8)  # exceeds horizon
    with pytest.raises(SchedulingError):
        batched_occupancy_rows([0, 1], [2], 1, 8)  # shape mismatch


# ---------------------------------------------------------------------------
# modulo_max_rows
# ---------------------------------------------------------------------------
@given(
    matrix=st.lists(
        st.lists(
            st.floats(
                min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
            ),
            min_size=0,
            max_size=17,
        ),
        min_size=0,
        max_size=6,
    ).filter(lambda rows: len({len(r) for r in rows}) <= 1),
    period=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
def test_modulo_max_rows_bit_match_reference(matrix, period):
    horizon = len(matrix[0]) if matrix else 0
    rows = np.asarray(matrix, dtype=float).reshape(len(matrix), horizon)
    folded = modulo_max_rows(rows, period)
    assert folded.shape == (len(matrix), period)
    assert folded.dtype == np.float64
    for i, row in enumerate(rows):
        assert_array_equal(folded[i], modulo_max_reference(row, period))


def test_modulo_max_rows_int_dtype_stable():
    rows = np.asarray([[3, -1, 2, 5, 0], [1, 1, 1, 1, 1]], dtype=np.int64)
    folded = modulo_max_rows(rows, 2)
    assert folded.dtype == np.int64
    for i, row in enumerate(rows):
        assert_array_equal(folded[i], modulo_max_reference(row, 2))


def test_modulo_max_rows_horizon_shorter_than_period():
    rows = np.asarray([[2.0, -3.0]])
    assert_array_equal(modulo_max_rows(rows, 5)[0], modulo_max_reference(rows[0], 5))


# ---------------------------------------------------------------------------
# row dot helpers
# ---------------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50)
def test_row_dot_helpers_match_scalar_dots(seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(5, 9))
    vector = rng.normal(size=9)
    dots = row_dots(matrix, vector)
    selfs = row_self_dots(matrix)
    for i in range(matrix.shape[0]):
        assert abs(dots[i] - float(np.dot(matrix[i], vector))) < DECISION_EPS
        assert abs(selfs[i] - float(np.dot(matrix[i], matrix[i]))) < DECISION_EPS


# ---------------------------------------------------------------------------
# DeltaBatch vs BlockState.placement_deltas (bit parity)
# ---------------------------------------------------------------------------
def assert_batch_matches_scalar(state, candidates):
    batch = DeltaBatch(state, candidates)
    for row, (op_id, start) in enumerate(candidates):
        scalar = state.placement_deltas(op_id, start)
        # The scalar dict iterates a set, so only the membership is
        # deterministic; the batch pins first-occurrence order on top.
        assert set(batch.type_orders[row]) == set(scalar.keys())
        for type_name, delta in scalar.items():
            assert_array_equal(
                batch.deltas[type_name][row],
                delta,
                err_msg=f"{op_id}@{start} type {type_name}",
            )
        # Rows of types the candidate does not displace are never
        # consumed (type_orders gates every reader), so their contents
        # are unspecified — only the membership above is checked.


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_delta_batch_narrow_bit_parity(seed):
    """Frame-end batches (IFDS shape) replay the scalar accumulation."""
    state = scrambled_state(seed)
    fallback = guarded_footprint_ops(state)
    candidates = []
    for op_id in state.frames.unfixed():
        if op_id in fallback:
            continue
        lo, hi = state.frames.frame(op_id)
        candidates.extend([(op_id, lo), (op_id, hi)])
    if candidates:
        assert_batch_matches_scalar(state, candidates)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_delta_batch_wide_bit_parity(seed):
    """Whole-frame batches (FDS shape) through the stacked-occupancy path."""
    state = scrambled_state(seed)
    fallback = guarded_footprint_ops(state)
    candidates = []
    for op_id in state.frames.unfixed():
        if op_id in fallback:
            continue
        lo, hi = state.frames.frame(op_id)
        candidates.extend((op_id, step) for step in range(lo, hi + 1))
    if candidates:
        assert_batch_matches_scalar(state, candidates)


def test_delta_batch_empty_candidates():
    state = random_state(0)
    batch = DeltaBatch(state, [])
    assert batch.deltas == {}
    assert batch.type_orders == []


def test_delta_batch_single_slot_frame():
    state = random_state(1)
    op_id = state.frames.unfixed()[0]
    lo, _hi = state.frames.frame(op_id)
    state.commit_reduce_effect(op_id, lo, lo)
    assert_batch_matches_scalar(state, [(op_id, lo), (op_id, lo)])


def test_delta_batch_dtype_stability():
    state = random_state(2)
    op_id = state.frames.unfixed()[0]
    lo, hi = state.frames.frame(op_id)
    batch = DeltaBatch(state, [(op_id, lo), (op_id, hi)])
    for matrix in batch.deltas.values():
        assert matrix.dtype == np.float64


# ---------------------------------------------------------------------------
# PlacementKernel vs placement_force
# ---------------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_placement_kernel_decision_level_parity(seed):
    state = scrambled_state(seed)
    kernel = PlacementKernel(state)
    for op_id in state.frames.unfixed():
        lo, hi = state.frames.frame(op_id)
        steps = range(lo, hi + 1)
        batched = kernel.forces(op_id, steps)
        scalar = [placement_force(state, op_id, step) for step in steps]
        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            assert abs(got - want) < DECISION_EPS


def test_guarded_footprint_falls_back_to_scalar_bitwise():
    """Modal blocks route guarded-footprint ops through placement_force;
    results there are bit-identical (the kernel delegates verbatim)."""
    graph = mode_switching_filter(4, name="modal")
    deadline = graph.critical_path_length(LIBRARY.latency_of) + 4
    state = BlockState(Block(name="m", graph=graph, deadline=deadline), LIBRARY)
    kernel = PlacementKernel(state)
    assert kernel.scalar_ops, "modal workload must have a guarded footprint"
    for op_id in sorted(kernel.scalar_ops):
        lo, hi = state.frames.frame(op_id)
        batched = kernel.forces(op_id, range(lo, hi + 1))
        for step, got in zip(range(lo, hi + 1), batched):
            assert got == placement_force(state, op_id, step)
