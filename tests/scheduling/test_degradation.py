"""Budget-exhaustion degradation: schedulers fall back, never hang.

Acceptance criterion of the robustness PR: exhausting a
:class:`RunBudget` mid-run yields a *valid* fallback schedule tagged
``degraded=True`` with the exhaustion reason in the telemetry — instead
of an unbounded run or an exception.
"""

import pytest

from repro.api import loads_problem
from repro.core.verify import verify
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.fds import ForceDirectedScheduler
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.validation import RunBudget

TEXT = """\
system degrade
process p1
block p1 main deadline=10
op p1 main a1 add
op p1 main a2 add
op p1 main m1 mul
op p1 main m2 mul
edge p1 main a1 m1
edge p1 main a2 m2
process p2
block p2 main deadline=10
op p2 main m1 mul
op p2 main m2 mul
op p2 main a1 add
edge p2 main m1 a1
global multiplier p1 p2
period multiplier 5
"""


def wide_block(n_ops=8, deadline=12):
    graph = DataFlowGraph(name="wide")
    for i in range(n_ops):
        graph.add(f"a{i}", OpKind.ADD)
    return Block(name="wide", graph=graph, deadline=deadline)


class TestBlockSchedulers:
    @pytest.mark.parametrize(
        "cls", [ForceDirectedScheduler, ImprovedForceDirectedScheduler]
    )
    def test_exhaustion_degrades_to_valid_schedule(self, cls):
        scheduler = cls(default_library(), budget=RunBudget(max_iterations=1))
        schedule = scheduler.schedule(wide_block())
        assert schedule.degraded
        assert "iteration budget exhausted" in schedule.degraded_reason
        schedule.validate()
        assert schedule.makespan <= 12

    @pytest.mark.parametrize(
        "cls", [ForceDirectedScheduler, ImprovedForceDirectedScheduler]
    )
    def test_ample_budget_never_degrades(self, cls):
        scheduler = cls(
            default_library(), budget=RunBudget(max_iterations=100_000)
        )
        schedule = scheduler.schedule(wide_block())
        assert not schedule.degraded
        assert schedule.degraded_reason is None

    def test_no_budget_keeps_exact_behavior(self):
        baseline = ForceDirectedScheduler(default_library()).schedule(
            wide_block()
        )
        budgeted = ForceDirectedScheduler(
            default_library(), budget=RunBudget(max_iterations=100_000)
        ).schedule(wide_block())
        assert baseline.starts == budgeted.starts


class TestSystemScheduler:
    def test_exhaustion_tags_result_and_telemetry(self):
        problem = loads_problem(TEXT)
        result = problem.schedule(budget=RunBudget(max_iterations=1))
        assert result.degraded
        info = result.telemetry["degraded"]
        assert "iteration budget exhausted" in info["reason"]
        assert info["fallback"] == "list_scheduling"
        for sched in result.block_schedules.values():
            assert sched.degraded

    def test_degraded_result_still_verifies(self):
        problem = loads_problem(TEXT)
        result = problem.schedule(budget=RunBudget(max_iterations=1))
        verify(result)  # safety holds even on the fallback path

    def test_degraded_area_bounds_the_optimized_one(self):
        problem = loads_problem(TEXT)
        good = problem.schedule()
        degraded = problem.schedule(budget=RunBudget(max_iterations=1))
        assert degraded.total_area() >= good.total_area()

    def test_ample_budget_matches_unbudgeted_run(self):
        problem = loads_problem(TEXT)
        free = problem.schedule()
        budgeted = problem.schedule(
            budget=RunBudget(max_iterations=100_000, wall_deadline=300.0)
        )
        assert not budgeted.degraded
        assert budgeted.total_area() == free.total_area()
        assert "degraded" not in budgeted.telemetry

    def test_wall_deadline_degrades(self):
        problem = loads_problem(TEXT)
        result = problem.schedule(
            budget=RunBudget(wall_deadline=1e-9)
        )
        assert result.degraded
        info = result.telemetry["degraded"]
        assert "wall-clock budget exhausted" in info["reason"]
        verify(result)
