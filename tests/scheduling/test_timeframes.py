"""Tests for repro.scheduling.timeframes."""

import pytest

from repro.errors import InfeasibleError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.scheduling.timeframes import FrameTable, alap_schedule, asap_schedule

UNIT = lambda op: 1  # noqa: E731


def mixed_latency(op):
    return 2 if op.kind is OpKind.MUL else 1


def chain(n=3):
    graph = DataFlowGraph(name="chain")
    for i in range(n):
        graph.add(f"n{i}", OpKind.ADD)
    for i in range(n - 1):
        graph.add_edge(f"n{i}", f"n{i + 1}")
    return graph


class TestInitialFrames:
    def test_chain_frames_against_deadline(self):
        table = FrameTable(chain(3), UNIT, deadline=5)
        assert table.frame("n0") == (0, 2)
        assert table.frame("n1") == (1, 3)
        assert table.frame("n2") == (2, 4)

    def test_zero_mobility_at_critical_deadline(self):
        table = FrameTable(chain(3), UNIT, deadline=3)
        for oid in ("n0", "n1", "n2"):
            assert table.is_fixed(oid)
        assert table.all_fixed()

    def test_infeasible_deadline_raises(self):
        with pytest.raises(InfeasibleError, match="deadline"):
            FrameTable(chain(4), UNIT, deadline=3)

    def test_multicycle_latency_respected(self):
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("b", OpKind.ADD)
        graph.add_edges([("a", "m"), ("m", "b")])
        table = FrameTable(graph, mixed_latency, deadline=6)
        assert table.frame("a") == (0, 2)
        assert table.frame("m") == (1, 3)  # latest start 6-1-2
        assert table.frame("b") == (3, 5)

    def test_independent_ops_full_mobility(self):
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        table = FrameTable(graph, UNIT, deadline=4)
        assert table.frame("a") == (0, 3)
        assert table.width("b") == 4
        assert table.mobility("b") == 3

    def test_zero_latency_rejected(self):
        with pytest.raises(Exception, match="latency"):
            FrameTable(chain(2), lambda op: 0, deadline=5)


class TestReduction:
    def test_reduce_propagates_forward(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        changed = table.reduce("n0", 2, 2)
        assert table.frame("n0") == (2, 2)
        assert table.lo("n1") == 3
        assert table.lo("n2") == 4
        assert changed == {"n0", "n1", "n2"}

    def test_reduce_propagates_backward(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        changed = table.reduce("n2", 2, 2)
        assert table.hi("n1") == 1
        assert table.hi("n0") == 0
        assert "n0" in changed

    def test_noop_reduction_returns_empty(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        assert table.reduce("n0", 0, 3) == set()

    def test_reduction_clamps_to_current_frame(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        table.reduce("n0", -5, 100)
        assert table.frame("n0") == (0, 3)

    def test_empty_reduction_raises_and_rolls_back(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        before = table.frames()
        with pytest.raises(InfeasibleError):
            table.reduce("n0", 5, 4)
        assert table.frames() == before

    def test_infeasible_propagation_rolls_back(self):
        graph = chain(3)
        table = FrameTable(graph, UNIT, deadline=3)  # all fixed
        before = table.frames()
        with pytest.raises(InfeasibleError):
            table.reduce("n0", 1, 1)
        assert table.frames() == before

    def test_fix_pins_single_step(self):
        table = FrameTable(chain(2), UNIT, deadline=5)
        table.fix("n0", 1)
        assert table.is_fixed("n0")
        assert table.lo("n1") == 2

    def test_as_schedule_requires_all_fixed(self):
        table = FrameTable(chain(2), UNIT, deadline=5)
        with pytest.raises(Exception, match="not fully reduced"):
            table.as_schedule()
        table.fix("n0", 0)
        table.fix("n1", 1)
        assert table.as_schedule() == {"n0": 0, "n1": 1}

    def test_unfixed_lists_mobile_ops(self):
        table = FrameTable(chain(2), UNIT, deadline=5)
        assert set(table.unfixed()) == {"n0", "n1"}
        table.fix("n0", 0)
        assert table.unfixed() == ["n1"]


class TestImpliedNeighborFrames:
    def test_placement_reduces_successor_lo(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        implied = table.implied_neighbor_frames("n0", 3)
        assert implied["n1"] == (4, 4)

    def test_placement_reduces_predecessor_hi(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        implied = table.implied_neighbor_frames("n2", 2)
        assert implied["n1"] == (1, 1)

    def test_placement_without_effect_returns_empty(self):
        graph = DataFlowGraph()
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        table = FrameTable(graph, UNIT, deadline=4)
        assert table.implied_neighbor_frames("a", 2) == {}

    def test_table_not_mutated_by_implied_query(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        before = table.frames()
        table.implied_neighbor_frames("n0", 3)
        assert table.frames() == before


class TestMobilityTracking:
    """Incremental unfixed/version bookkeeping (the frame fast paths)."""

    def test_unfixed_count_tracks_fixes(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        assert table.unfixed_count() == 3
        table.fix("n0", 0)
        assert table.unfixed_count() == 2
        assert not table.all_fixed()
        table.fix("n1", 1)
        table.fix("n2", 2)
        assert table.unfixed_count() == 0
        assert table.all_fixed()

    def test_unfixed_count_includes_propagated_fixes(self):
        # Fixing n2 at its earliest start pins the whole chain at once.
        table = FrameTable(chain(3), UNIT, deadline=6)
        table.fix("n2", 2)
        assert table.unfixed_count() == 0
        assert table.unfixed() == []

    def test_version_bumps_only_on_committed_change(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        v0 = table.version()
        table.reduce("n0", -5, 100)  # superset: no frame changes
        assert table.version() == v0
        table.reduce("n0", 1, 3)
        assert table.version() > v0

    def test_infeasible_reduce_keeps_count_consistent(self):
        table = FrameTable(chain(3), UNIT, deadline=6)
        table.fix("n0", 3)  # pins the whole chain at 3, 4, 5
        with pytest.raises(InfeasibleError):
            table.reduce("n1", 5, 5)
        assert table.unfixed_count() == 0
        assert table.unfixed() == []

    def test_refix_at_same_start_is_noop(self):
        table = FrameTable(chain(2), UNIT, deadline=5)
        table.fix("n0", 1)
        v = table.version()
        assert table.fix("n0", 1) == set()
        assert table.version() == v
        assert table.unfixed_count() == 1


class TestAsapAlap:
    def test_asap_schedule(self):
        starts = asap_schedule(chain(3), UNIT)
        assert starts == {"n0": 0, "n1": 1, "n2": 2}

    def test_alap_schedule(self):
        starts = alap_schedule(chain(3), UNIT, deadline=5)
        assert starts == {"n0": 2, "n1": 3, "n2": 4}

    def test_alap_matches_frame_table_hi(self):
        graph = DataFlowGraph(name="diamond")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("b", OpKind.ADD)
        graph.add("c", OpKind.ADD)
        graph.add_edges([("a", "m"), ("a", "b"), ("m", "c"), ("b", "c")])
        deadline = 7
        table = FrameTable(graph, mixed_latency, deadline)
        starts = alap_schedule(graph, mixed_latency, deadline)
        assert starts == {oid: table.hi(oid) for oid in graph.op_ids}

    def test_alap_infeasible_deadline_raises(self):
        with pytest.raises(InfeasibleError, match="deadline"):
            alap_schedule(chain(4), UNIT, deadline=3)

    def test_alap_zero_latency_rejected(self):
        with pytest.raises(Exception, match="latency"):
            alap_schedule(chain(2), lambda op: 0, deadline=5)

    def test_asap_with_multicycle(self):
        graph = DataFlowGraph()
        graph.add("m", OpKind.MUL)
        graph.add("a", OpKind.ADD)
        graph.add_edge("m", "a")
        starts = asap_schedule(graph, mixed_latency)
        assert starts == {"m": 0, "a": 2}
