"""Tests for the Improved Force-Directed Scheduler (IFDS)."""

import pytest

from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.fds import ForceDirectedScheduler
from repro.scheduling.ifds import ImprovedForceDirectedScheduler, evaluate_reduction
from repro.scheduling.state import BlockState
from repro.workloads import differential_equation, elliptic_wave_filter


@pytest.fixture
def library():
    return default_library()


def parallel_block(n_ops, deadline, kind=OpKind.ADD):
    graph = DataFlowGraph(name="par")
    for i in range(n_ops):
        graph.add(f"n{i}", kind)
    return Block(name="par", graph=graph, deadline=deadline)


class TestEvaluateReduction:
    def test_eta_full_for_width_two(self, library):
        state = BlockState(parallel_block(2, 2), library)
        choice = evaluate_reduction(state, "n0")
        # width 2 -> eta = 1: score equals the raw force difference.
        assert choice.score == pytest.approx(abs(choice.force_low - choice.force_high))

    def test_eta_half_for_wider_frames(self, library):
        state = BlockState(parallel_block(2, 5), library)
        state.commit_fix("n1", 0)
        choice = evaluate_reduction(state, "n0", lookahead=0.0)
        assert choice.score == pytest.approx(
            0.5 * abs(choice.force_low - choice.force_high)
        )

    def test_shrinks_at_higher_force_side(self, library):
        state = BlockState(parallel_block(2, 3), library)
        state.commit_fix("n1", 0)  # step 0 now crowded
        choice = evaluate_reduction(state, "n0", lookahead=0.0)
        assert choice.force_low > choice.force_high
        assert choice.shrink_low_side

    def test_tie_shrinks_high_side(self, library):
        state = BlockState(parallel_block(1, 3), library)
        choice = evaluate_reduction(state, "n0", lookahead=0.0)
        assert choice.force_low == pytest.approx(choice.force_high)
        assert not choice.shrink_low_side


class TestImprovedScheduler:
    def test_valid_schedule_on_chain(self, library):
        graph = DataFlowGraph(name="c")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("b", OpKind.ADD)
        graph.add_edges([("a", "m"), ("m", "b")])
        schedule = ImprovedForceDirectedScheduler(library).schedule(
            Block(name="c", graph=graph, deadline=7)
        )
        schedule.validate()

    def test_smooths_parallel_ops(self, library):
        schedule = ImprovedForceDirectedScheduler(library).schedule(
            parallel_block(4, 4)
        )
        assert schedule.peak_usage("adder") == 1

    def test_matches_fds_quality_on_diffeq(self, library):
        block_i = Block(name="d", graph=differential_equation(), deadline=10)
        block_c = Block(name="d", graph=differential_equation(), deadline=10)
        ifds = ImprovedForceDirectedScheduler(library).schedule(block_i)
        fds = ForceDirectedScheduler(library).schedule(block_c)
        assert ifds.peak_usage("multiplier") <= fds.peak_usage("multiplier") + 1

    def test_iteration_count_bounded_by_total_mobility(self, library):
        block = parallel_block(4, 6)
        schedule = ImprovedForceDirectedScheduler(library).schedule(block)
        # Each iteration removes at least one step from one frame.
        assert schedule.iterations <= 4 * 5

    def test_ewf_with_paper_slack(self, library):
        block = Block(name="e", graph=elliptic_wave_filter(), deadline=30)
        schedule = ImprovedForceDirectedScheduler(library).schedule(block)
        schedule.validate()
        # With nearly double the critical path, 2 adders and 1 multiplier
        # suffice for a reasonable force-directed result.
        assert schedule.peak_usage("adder") <= 3
        assert schedule.peak_usage("multiplier") <= 2

    def test_deterministic(self, library):
        s1 = ImprovedForceDirectedScheduler(library).schedule(parallel_block(5, 4))
        s2 = ImprovedForceDirectedScheduler(library).schedule(parallel_block(5, 4))
        assert s1.starts == s2.starts

    def test_weights_accepted(self, library):
        schedule = ImprovedForceDirectedScheduler(
            library, weights={"adder": 1.0, "multiplier": 4.0}
        ).schedule(parallel_block(3, 3))
        schedule.validate()
