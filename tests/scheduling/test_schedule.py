"""Tests for BlockSchedule (result container and validation)."""

import pytest

from repro.errors import VerificationError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.resources.library import default_library
from repro.scheduling.schedule import BlockSchedule


def make_schedule(starts, deadline=6):
    library = default_library()
    graph = DataFlowGraph(name="b")
    graph.add("a1", OpKind.ADD)
    graph.add("m1", OpKind.MUL)
    graph.add("a2", OpKind.ADD)
    graph.add_edges([("a1", "m1"), ("m1", "a2")])
    return BlockSchedule(
        graph=graph, library=library, starts=starts, deadline=deadline
    )


class TestAccessors:
    def test_start_finish_makespan(self):
        sched = make_schedule({"a1": 0, "m1": 1, "a2": 3})
        assert sched.start("m1") == 1
        assert sched.finish("m1") == 3  # latency 2
        assert sched.finish("a2") == 4
        assert sched.makespan == 4


class TestValidation:
    def test_valid_schedule_passes(self):
        make_schedule({"a1": 0, "m1": 1, "a2": 3}).validate()

    def test_missing_operation_rejected(self):
        with pytest.raises(VerificationError, match="unscheduled"):
            make_schedule({"a1": 0, "m1": 1}).validate()

    def test_negative_start_rejected(self):
        with pytest.raises(VerificationError, match="before step 0"):
            make_schedule({"a1": -1, "m1": 1, "a2": 3}).validate()

    def test_deadline_violation_rejected(self):
        with pytest.raises(VerificationError, match="past"):
            make_schedule({"a1": 0, "m1": 1, "a2": 3}, deadline=3).validate()

    def test_precedence_violation_rejected(self):
        with pytest.raises(VerificationError, match="precedence"):
            make_schedule({"a1": 0, "m1": 1, "a2": 2}).validate()  # m1 ends at 3


class TestUsage:
    def test_usage_profile_counts_occupancy(self):
        sched = make_schedule({"a1": 0, "m1": 1, "a2": 3})
        adders = sched.usage_profile("adder")
        assert adders.tolist() == [1, 0, 0, 1, 0, 0]
        # Pipelined multiplier occupies only its start step.
        mults = sched.usage_profile("multiplier")
        assert mults.tolist() == [0, 1, 0, 0, 0, 0]

    def test_peak_usage(self):
        sched = make_schedule({"a1": 0, "m1": 1, "a2": 3})
        assert sched.peak_usage("adder") == 1
        assert sched.peak_usage("subtracter") == 0

    def test_peaks_lists_used_types(self):
        sched = make_schedule({"a1": 0, "m1": 1, "a2": 3})
        assert sched.peaks() == {"adder": 1, "multiplier": 1}

    def test_concurrent_ops_counted(self):
        library = default_library()
        graph = DataFlowGraph(name="p")
        graph.add("x", OpKind.ADD)
        graph.add("y", OpKind.ADD)
        sched = BlockSchedule(
            graph=graph, library=library, starts={"x": 0, "y": 0}, deadline=2
        )
        assert sched.peak_usage("adder") == 2


class TestRendering:
    def test_table_mentions_steps(self):
        text = make_schedule({"a1": 0, "m1": 1, "a2": 3}).table()
        assert "step   0" in text
        assert "step   3" in text
