"""Tests for Force-Directed List Scheduling."""

import pytest

from repro.errors import SchedulingError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.fdls import ForceDirectedListScheduler
from repro.scheduling.list_scheduling import ListScheduler
from repro.workloads import differential_equation, elliptic_wave_filter


@pytest.fixture
def library():
    return default_library()


def parallel_adds(n, deadline=4):
    graph = DataFlowGraph(name="par")
    for i in range(n):
        graph.add(f"n{i}", OpKind.ADD)
    return Block(name="par", graph=graph, deadline=deadline)


class TestFdls:
    def test_single_adder_serializes(self, library):
        schedule = ForceDirectedListScheduler(library, {"adder": 1}).schedule(
            parallel_adds(4)
        )
        assert schedule.makespan == 4
        assert schedule.peak_usage("adder") == 1

    def test_two_adders(self, library):
        schedule = ForceDirectedListScheduler(library, {"adder": 2}).schedule(
            parallel_adds(4)
        )
        assert schedule.makespan == 2
        assert schedule.peak_usage("adder") <= 2

    def test_chain_meets_critical_path(self, library):
        graph = DataFlowGraph(name="c")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("b", OpKind.ADD)
        graph.add_edges([("a", "m"), ("m", "b")])
        schedule = ForceDirectedListScheduler(
            library, {"adder": 1, "multiplier": 1}
        ).schedule(Block(name="c", graph=graph, deadline=4))
        assert schedule.makespan == 4

    def test_capacity_respected_with_pipelined_mults(self, library):
        graph = DataFlowGraph(name="m")
        for i in range(4):
            graph.add(f"m{i}", OpKind.MUL)
        schedule = ForceDirectedListScheduler(library, {"multiplier": 2}).schedule(
            Block(name="m", graph=graph, deadline=8)
        )
        assert schedule.peak_usage("multiplier") <= 2
        assert schedule.makespan == 3  # two waves of 2, latency 2

    def test_diffeq_single_units(self, library):
        capacity = {"adder": 1, "subtracter": 1, "multiplier": 1}
        schedule = ForceDirectedListScheduler(library, capacity).schedule(
            Block(name="d", graph=differential_equation(), deadline=6)
        )
        schedule.validate()
        assert schedule.peak_usage("multiplier") <= 1
        # Six multiplications through one pipelined unit need >= 6 issues.
        assert schedule.makespan >= 8

    def test_matches_or_beats_list_scheduling_on_ewf(self, library):
        capacity = {"adder": 2, "multiplier": 1}
        block_f = Block(name="e", graph=elliptic_wave_filter(), deadline=17)
        block_l = Block(name="e", graph=elliptic_wave_filter(), deadline=17)
        fdls = ForceDirectedListScheduler(library, capacity).schedule(block_f)
        baseline = ListScheduler(library, capacity).schedule(block_l)
        assert fdls.makespan <= baseline.makespan + 2
        assert fdls.peak_usage("adder") <= 2

    def test_missing_capacity_rejected(self, library):
        with pytest.raises(SchedulingError, match="no capacity"):
            ForceDirectedListScheduler(library, {"multiplier": 1}).schedule(
                parallel_adds(2)
            )

    def test_nonpositive_capacity_rejected(self, library):
        with pytest.raises(SchedulingError, match=">= 1"):
            ForceDirectedListScheduler(library, {"adder": 0})

    def test_deterministic(self, library):
        s1 = ForceDirectedListScheduler(library, {"adder": 2}).schedule(
            parallel_adds(6)
        )
        s2 = ForceDirectedListScheduler(library, {"adder": 2}).schedule(
            parallel_adds(6)
        )
        assert s1.starts == s2.starts
