"""Tests for repro.scheduling.distribution."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.resources.library import default_library
from repro.scheduling.distribution import BlockDistributions, occupancy_row
from repro.scheduling.timeframes import FrameTable


class TestOccupancyRow:
    def test_fixed_unit_op(self):
        row = occupancy_row(2, 2, 1, 5)
        assert row.tolist() == [0, 0, 1, 0, 0]

    def test_uniform_probability_over_frame(self):
        row = occupancy_row(0, 3, 1, 4)
        assert np.allclose(row, [0.25, 0.25, 0.25, 0.25])

    def test_multicycle_occupancy_accumulates(self):
        # Frame [0,1], occupancy 2: starts at 0 covers {0,1}, start 1 covers {1,2}.
        row = occupancy_row(0, 1, 2, 4)
        assert np.allclose(row, [0.5, 1.0, 0.5, 0.0])

    def test_probabilities_sum_to_occupancy(self):
        for occ in (1, 2, 3):
            row = occupancy_row(1, 4, occ, 10)
            assert row.sum() == pytest.approx(occ)

    def test_empty_frame_rejected(self):
        with pytest.raises(SchedulingError, match="empty frame"):
            occupancy_row(3, 2, 1, 5)

    def test_overflowing_horizon_rejected(self):
        with pytest.raises(SchedulingError, match="horizon"):
            occupancy_row(3, 4, 2, 5)

    def test_vectorized_matches_reference_loop(self):
        """The sliding-window formulation must equal the per-start loop
        it replaced, bit-for-bit (exact zeros outside the span)."""

        def reference(lo, hi, occupancy, horizon):
            row = np.zeros(horizon, dtype=float)
            weight = 1.0 / (hi - lo + 1)
            for start in range(lo, hi + 1):
                row[start : start + occupancy] += weight
            return row

        for lo, hi, occ, horizon in [
            (0, 0, 1, 1),
            (0, 3, 1, 4),
            (0, 1, 2, 4),
            (2, 6, 3, 12),
            (1, 9, 4, 20),
            (5, 5, 5, 10),
        ]:
            got = occupancy_row(lo, hi, occ, horizon)
            want = reference(lo, hi, occ, horizon)
            assert np.allclose(got, want)
            # Exact zeros where the op can never execute.
            assert not got[:lo].any()
            assert not got[hi + occ :].any()

    def test_tentative_row_cached_instance_reused(self):
        __, dist = make_block_distributions()
        first = dist.tentative_row("a1", 1, 2)
        second = dist.tentative_row("a1", 1, 2)
        assert first is second


def make_block_distributions(deadline=6):
    library = default_library()
    graph = DataFlowGraph(name="b")
    graph.add("a1", OpKind.ADD)
    graph.add("m1", OpKind.MUL)
    graph.add("a2", OpKind.ADD)
    graph.add_edges([("a1", "m1"), ("m1", "a2")])
    frames = FrameTable(graph, library.latency_of, deadline)
    return frames, BlockDistributions(graph, library, frames)


class TestBlockDistributions:
    def test_type_names_deterministic(self):
        __, dist = make_block_distributions()
        assert dist.type_names == ["adder", "multiplier"]

    def test_ops_of_type(self):
        __, dist = make_block_distributions()
        assert dist.ops_of_type("adder") == ["a1", "a2"]
        assert dist.ops_of_type("multiplier") == ["m1"]
        assert dist.ops_of_type("subtracter") == []

    def test_distribution_is_sum_of_rows(self):
        __, dist = make_block_distributions()
        total = dist.row("a1") + dist.row("a2")
        assert np.allclose(dist.array("adder"), total)

    def test_unknown_type_rejected(self):
        __, dist = make_block_distributions()
        with pytest.raises(SchedulingError, match="no resource"):
            dist.array("divider")

    def test_pipelined_mul_occupies_one_step_per_start(self):
        __, dist = make_block_distributions()
        # Occupancy sums to 1 even though latency is 2 (pipelined).
        assert dist.row("m1").sum() == pytest.approx(1.0)

    def test_refresh_after_frame_reduction(self):
        frames, dist = make_block_distributions()
        changed = frames.reduce("a1", 0, 0)
        touched = dist.refresh(changed)
        assert "adder" in touched
        assert dist.row("a1")[0] == pytest.approx(1.0)
        assert np.allclose(dist.array("adder"), dist.row("a1") + dist.row("a2"))

    def test_tentative_row_does_not_mutate(self):
        __, dist = make_block_distributions()
        before = dist.array("adder").copy()
        dist.tentative_row("a1", 1, 1)
        assert np.allclose(dist.array("adder"), before)

    def test_peak(self):
        frames, dist = make_block_distributions()
        frames_changed = frames.reduce("a1", 0, 0)
        dist.refresh(frames_changed)
        assert dist.peak("adder") >= 1.0

    def test_total_probability_mass_conserved_under_refresh(self):
        frames, dist = make_block_distributions()
        mass_before = dist.array("adder").sum()
        dist.refresh(frames.reduce("a2", 4, 5))
        assert dist.array("adder").sum() == pytest.approx(mass_before)
