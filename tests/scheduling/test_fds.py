"""Tests for the classic Force-Directed Scheduler."""

import pytest

from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.fds import ForceDirectedScheduler
from repro.workloads import differential_equation, elliptic_wave_filter


@pytest.fixture
def library():
    return default_library()


def parallel_block(n_ops, deadline, kind=OpKind.ADD):
    graph = DataFlowGraph(name="par")
    for i in range(n_ops):
        graph.add(f"n{i}", kind)
    return Block(name="par", graph=graph, deadline=deadline)


class TestForceDirectedScheduler:
    def test_chain_is_scheduled_validly(self, library):
        graph = DataFlowGraph(name="c")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("b", OpKind.ADD)
        graph.add_edges([("a", "m"), ("m", "b")])
        block = Block(name="c", graph=graph, deadline=6)
        schedule = ForceDirectedScheduler(library).schedule(block)
        schedule.validate()
        assert schedule.makespan <= 6

    def test_smooths_parallel_ops_perfectly(self, library):
        """4 independent adds over 4 steps: one per step -> 1 adder."""
        block = parallel_block(4, 4)
        schedule = ForceDirectedScheduler(library).schedule(block)
        assert schedule.peak_usage("adder") == 1

    def test_smooths_with_slack(self, library):
        """6 independent adds over 3 steps -> 2 adders, never 3+."""
        block = parallel_block(6, 3)
        schedule = ForceDirectedScheduler(library).schedule(block)
        assert schedule.peak_usage("adder") == 2

    def test_zero_mobility_block(self, library):
        graph = DataFlowGraph(name="c")
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        graph.add_edge("a", "b")
        block = Block(name="c", graph=graph, deadline=2)
        schedule = ForceDirectedScheduler(library).schedule(block)
        assert schedule.starts == {"a": 0, "b": 1}

    def test_diffeq_under_paper_deadline(self, library):
        block = Block(name="d", graph=differential_equation(), deadline=15)
        schedule = ForceDirectedScheduler(library).schedule(block)
        schedule.validate()
        # Generous deadline: one multiplier and one adder-equivalent suffice.
        assert schedule.peak_usage("multiplier") <= 2

    def test_deterministic(self, library):
        block1 = parallel_block(5, 4)
        block2 = parallel_block(5, 4)
        s1 = ForceDirectedScheduler(library).schedule(block1)
        s2 = ForceDirectedScheduler(library).schedule(block2)
        assert s1.starts == s2.starts

    def test_ewf_critical_deadline(self, library):
        """EWF at its critical path: schedule exists and validates."""
        block = Block(name="e", graph=elliptic_wave_filter(), deadline=17)
        schedule = ForceDirectedScheduler(library).schedule(block)
        schedule.validate()
        assert schedule.makespan == 17

    def test_iterations_counted(self, library):
        block = parallel_block(3, 3)
        schedule = ForceDirectedScheduler(library).schedule(block)
        assert schedule.iterations >= 1
