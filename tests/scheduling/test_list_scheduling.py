"""Tests for resource-constrained list scheduling."""

import pytest

from repro.errors import SchedulingError
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.list_scheduling import ListScheduler
from repro.workloads import differential_equation


@pytest.fixture
def library():
    return default_library()


def parallel_adds(n, deadline=4):
    graph = DataFlowGraph(name="par")
    for i in range(n):
        graph.add(f"n{i}", OpKind.ADD)
    return Block(name="par", graph=graph, deadline=deadline)


class TestListScheduler:
    def test_single_adder_serializes(self, library):
        schedule = ListScheduler(library, {"adder": 1}).schedule(parallel_adds(4))
        assert schedule.makespan == 4
        assert schedule.peak_usage("adder") == 1

    def test_two_adders_halve_makespan(self, library):
        schedule = ListScheduler(library, {"adder": 2}).schedule(parallel_adds(4))
        assert schedule.makespan == 2

    def test_precedence_respected(self, library):
        graph = DataFlowGraph(name="c")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add("b", OpKind.ADD)
        graph.add_edges([("a", "m"), ("m", "b")])
        schedule = ListScheduler(
            library, {"adder": 1, "multiplier": 1}
        ).schedule(Block(name="c", graph=graph, deadline=6))
        schedule.validate()
        assert schedule.makespan == 4  # 1 + 2 + 1

    def test_pipelined_multiplier_initiates_every_cycle(self, library):
        graph = DataFlowGraph(name="m")
        for i in range(3):
            graph.add(f"m{i}", OpKind.MUL)
        schedule = ListScheduler(library, {"multiplier": 1}).schedule(
            Block(name="m", graph=graph, deadline=8)
        )
        # One pipelined multiplier: one start per cycle, last result at 2+2.
        assert schedule.makespan == 4

    def test_diffeq_with_paper_resources(self, library):
        capacity = {"adder": 1, "subtracter": 1, "multiplier": 1}
        schedule = ListScheduler(library, capacity).schedule(
            Block(name="d", graph=differential_equation(), deadline=15)
        )
        schedule.validate()
        # 6 pipelined multiplications on one unit: >= 6 initiations + latency.
        assert schedule.makespan >= 7

    def test_missing_capacity_rejected(self, library):
        with pytest.raises(SchedulingError, match="no capacity"):
            ListScheduler(library, {"multiplier": 1}).schedule(parallel_adds(2))

    def test_nonpositive_capacity_rejected(self, library):
        with pytest.raises(SchedulingError, match=">= 1"):
            ListScheduler(library, {"adder": 0})

    def test_unknown_type_in_capacity_rejected(self, library):
        with pytest.raises(Exception, match="no resource type"):
            ListScheduler(library, {"frobnicator": 1})

    def test_slot_capacity_hook_blocks_slots(self, library):
        """Forbid the adder at even steps: ops land on odd steps only."""
        scheduler = ListScheduler(library, {"adder": 1})
        schedule = scheduler.schedule(
            parallel_adds(2, deadline=6),
            slot_capacity=lambda name, step: 0 if step % 2 == 0 else 1,
        )
        for start in schedule.starts.values():
            assert start % 2 == 1

    def test_unsatisfiable_slot_capacity_raises(self, library):
        scheduler = ListScheduler(library, {"adder": 1})
        with pytest.raises(SchedulingError, match="horizon"):
            scheduler.schedule(
                parallel_adds(1), slot_capacity=lambda name, step: 0
            )

    def test_deterministic(self, library):
        s1 = ListScheduler(library, {"adder": 2}).schedule(parallel_adds(5))
        s2 = ListScheduler(library, {"adder": 2}).schedule(parallel_adds(5))
        assert s1.starts == s2.starts
