"""Tests for repro.scheduling.forces and state (placement deltas)."""

import numpy as np
import pytest

from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.resources.library import default_library
from repro.scheduling.forces import (
    area_weights,
    hooke_force,
    placement_force,
    uniform_weights,
)
from repro.scheduling.state import BlockState


def two_add_block(deadline=2):
    """Two independent additions in a 2-step range (figure-2 flavor)."""
    graph = DataFlowGraph(name="b")
    graph.add("a1", OpKind.ADD)
    graph.add("a2", OpKind.ADD)
    return Block(name="b", graph=graph, deadline=deadline)


class TestHookeForce:
    def test_zero_delta_zero_force(self):
        d = np.array([1.0, 2.0])
        assert hooke_force(d, np.zeros(2), 0.0) == 0.0

    def test_plain_hooke_matches_dot_product(self):
        d = np.array([1.0, 2.0, 0.5])
        delta = np.array([0.5, -0.25, -0.25])
        assert hooke_force(d, delta, 0.0) == pytest.approx(
            0.5 * 1 - 0.25 * 2 - 0.25 * 0.5
        )

    def test_lookahead_adds_quadratic_term(self):
        d = np.zeros(2)
        delta = np.array([1.0, -1.0])
        assert hooke_force(d, delta, 1 / 3) == pytest.approx(2 / 3)

    def test_moving_onto_peak_is_positive(self):
        d = np.array([2.0, 0.5])
        delta = np.array([0.5, -0.5])  # concentrate on the peak
        assert hooke_force(d, delta, 0.0) > 0

    def test_moving_off_peak_is_negative(self):
        d = np.array([2.0, 0.5])
        delta = np.array([-0.5, 0.5])
        assert hooke_force(d, delta, 0.0) < 0


class TestWeights:
    def test_uniform_weights(self):
        weights = uniform_weights(default_library())
        assert set(weights.values()) == {1.0}

    def test_area_weights_match_library(self):
        weights = area_weights(default_library())
        assert weights["multiplier"] == 4.0
        assert weights["adder"] == 1.0


class TestPlacementDeltas:
    def test_delta_sums_to_zero(self):
        """Displacement conserves probability mass (eq. 5)."""
        state = BlockState(two_add_block(4), default_library())
        for step in range(4):
            deltas = state.placement_deltas("a1", step)
            assert deltas["adder"].sum() == pytest.approx(0.0)

    def test_self_delta_shape(self):
        state = BlockState(two_add_block(2), default_library())
        deltas = state.placement_deltas("a1", 0)
        # From uniform [0.5, 0.5] to [1, 0]: delta [0.5, -0.5].
        assert np.allclose(deltas["adder"], [0.5, -0.5])

    def test_neighbor_deltas_included(self):
        library = default_library()
        graph = DataFlowGraph(name="c")
        graph.add("a1", OpKind.ADD)
        graph.add("a2", OpKind.ADD)
        graph.add_edge("a1", "a2")
        state = BlockState(Block(name="c", graph=graph, deadline=3), library)
        # Placing a1 at 1 forces a2 to 2 — its delta appears too.
        deltas = state.placement_deltas("a1", 1)
        assert deltas["adder"].sum() == pytest.approx(0.0)
        # a1 contributes [+.5 at 1] style change; a2 row moves toward 2.
        assert deltas["adder"][2] > 0

    def test_cross_type_neighbor_delta(self):
        library = default_library()
        graph = DataFlowGraph(name="c")
        graph.add("a1", OpKind.ADD)
        graph.add("m1", OpKind.MUL)
        graph.add_edge("a1", "m1")
        state = BlockState(Block(name="c", graph=graph, deadline=4), library)
        deltas = state.placement_deltas("a1", 1)
        assert "multiplier" in deltas


class TestPlacementForce:
    def test_balanced_block_has_symmetric_forces(self):
        state = BlockState(two_add_block(2), default_library())
        f0 = placement_force(state, "a1", 0, lookahead=0.0)
        f1 = placement_force(state, "a1", 1, lookahead=0.0)
        assert f0 == pytest.approx(f1)

    def test_moving_to_empty_step_preferred(self):
        state = BlockState(two_add_block(2), default_library())
        state.commit_fix("a2", 0)
        f0 = placement_force(state, "a1", 0, lookahead=0.0)
        f1 = placement_force(state, "a1", 1, lookahead=0.0)
        assert f1 < f0  # step 1 is empty, step 0 holds a2

    def test_weights_scale_force(self):
        library = default_library()
        graph = DataFlowGraph(name="m")
        graph.add("m1", OpKind.MUL)
        graph.add("m2", OpKind.MUL)
        state = BlockState(Block(name="m", graph=graph, deadline=3), library)
        state.commit_fix("m2", 0)
        unweighted = placement_force(state, "m1", 0, lookahead=0.0)
        weighted = placement_force(
            state, "m1", 0, lookahead=0.0, weights={"multiplier": 4.0}
        )
        assert weighted == pytest.approx(4.0 * unweighted)
