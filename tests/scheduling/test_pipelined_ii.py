"""Tests for pipelined units with initiation interval > 1.

A pipelined divider with latency 8 and II 2 occupies its unit two cycles
per start; occupancy > 1 routes global sharing through the periodic
conflict coloring, just like non-pipelined multicycle units.
"""

import pytest

from repro.core import ModuloSystemScheduler, PeriodAssignment
from repro.core.verify import verify_system_schedule
from repro.binding import bind_instances
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import ResourceLibrary
from repro.resources.types import resource_type
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.sim import SystemSimulator


def divider_library():
    return ResourceLibrary(
        [
            resource_type("adder", [OpKind.ADD], latency=1, area=1.0),
            resource_type(
                "divider",
                [OpKind.DIV],
                latency=8,
                area=12.0,
                pipelined=True,
                initiation_interval=2,
            ),
        ]
    )


class TestPipelinedII:
    def test_occupancy_is_ii(self):
        library = divider_library()
        assert library.type("divider").occupancy == 2
        assert library.type("divider").latency == 8

    def test_single_divider_spaces_starts_by_ii(self):
        library = divider_library()
        graph = DataFlowGraph(name="g")
        for i in range(3):
            graph.add(f"d{i}", OpKind.DIV)
        block = Block(name="b", graph=graph, deadline=16)
        schedule = ImprovedForceDirectedScheduler(library).schedule(block)
        schedule.validate()
        assert schedule.peak_usage("divider") <= 3

    def test_global_sharing_uses_coloring(self):
        library = divider_library()
        system = SystemSpec(name="s")
        for name in ("p1", "p2"):
            graph = DataFlowGraph(name=f"{name}-g")
            graph.add("d", OpKind.DIV)
            process = Process(name=name)
            process.add_block(Block(name="main", graph=graph, deadline=16))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("divider", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"divider": 8})
        )
        assert verify_system_schedule(result).ok
        # One lightly-used shared divider replaces two private ones if the
        # scheduler separates the slots; at worst it needs two.
        pool = result.global_instances("divider")
        assert 1 <= pool <= 2
        bind_instances(result).validate()
        for seed in range(3):
            stats = SystemSimulator(result, seed=seed, trigger_probability=0.5)
            assert stats.run(800).ok
