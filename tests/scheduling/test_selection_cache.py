"""Tests for the selection cache and its use by the FDS/IFDS schedulers."""

import pytest

from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block
from repro.obs import Tracer
from repro.resources.library import default_library
from repro.scheduling.fds import ForceDirectedScheduler
from repro.scheduling.ifds import ImprovedForceDirectedScheduler
from repro.scheduling.selection_cache import BlockSelectionCache
from repro.scheduling.state import BlockState, ReductionEffect
from repro.workloads import random_dfg


def diamond_block(deadline=6):
    """a -> {m, s} -> z : every op has at least one neighbor."""
    graph = DataFlowGraph(name="d")
    graph.add("a", OpKind.ADD)
    graph.add("m", OpKind.MUL)
    graph.add("s", OpKind.SUB)
    graph.add("z", OpKind.ADD)
    graph.add_edges([("a", "m"), ("a", "s"), ("m", "z"), ("s", "z")])
    return Block(name="b", graph=graph, deadline=deadline)


@pytest.fixture
def library():
    return default_library()


class TestBlockSelectionCache:
    def test_get_put_roundtrip(self, library):
        state = BlockState(diamond_block(), library)
        cache = BlockSelectionCache(state)
        assert cache.get("a") is None
        cache.put("a", 1.25)
        assert cache.get("a") == 1.25
        assert len(cache) == 1

    def test_changed_op_and_neighbors_dropped(self, library):
        state = BlockState(diamond_block(), library)
        cache = BlockSelectionCache(state)
        for op in ("a", "m", "s", "z"):
            cache.put(op, op)
        # m changed: m itself plus its neighbors a and z go dirty; s
        # survives only if its footprint avoids the touched types.
        effect = ReductionEffect(
            changed_ops=frozenset({"m"}), touched_types=frozenset()
        )
        cache.invalidate_after_commit(effect)
        assert cache.get("m") is None
        assert cache.get("a") is None
        assert cache.get("z") is None
        assert cache.get("s") == "s"

    def test_touched_type_drops_footprint_ops(self, library):
        state = BlockState(diamond_block(), library)
        cache = BlockSelectionCache(state)
        for op in ("a", "m", "s", "z"):
            cache.put(op, op)
        # multiplier footprint: m itself, plus a and z (m is their
        # direct neighbor); s has no multiplier in its footprint.
        effect = ReductionEffect(
            changed_ops=frozenset(), touched_types=frozenset({"multiplier"})
        )
        cache.invalidate_after_commit(effect)
        assert cache.get("m") is None
        assert cache.get("a") is None
        assert cache.get("z") is None
        assert cache.get("s") == "s"

    def test_invalidate_type(self, library):
        state = BlockState(diamond_block(), library)
        cache = BlockSelectionCache(state)
        for op in ("a", "m", "s", "z"):
            cache.put(op, op)
        removed = cache.invalidate_type("subtracter")
        # subtracter footprint: s itself plus its neighbors a and z.
        assert removed == 3
        assert cache.get("s") is None
        assert cache.get("m") == "m"

    def test_counters(self, library):
        state = BlockState(diamond_block(), library)
        cache = BlockSelectionCache(state)
        tracer = Tracer()
        with tracer.activate():
            cache.get("a")
            cache.put("a", 1.0)
            cache.get("a")
            cache.invalidate_ops(["a"])
        counters = tracer.counters.as_dict()
        assert counters["force_cache_misses"] == 1
        assert counters["force_cache_hits"] == 1
        assert counters["force_cache_invalidations"] == 1


def single_block(seed, slack, library):
    graph = random_dfg(10, seed=seed)
    deadline = graph.critical_path_length(library.latency_of) + slack
    return Block(name=f"b{seed}", graph=graph, deadline=deadline)


class TestSchedulerParity:
    """Cached single-block schedulers replay brute-force decisions exactly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_ifds_parity(self, seed, library):
        runs = {}
        for force_cache in (True, False):
            tracer = Tracer()
            scheduler = ImprovedForceDirectedScheduler(
                library, force_cache=force_cache, tracer=tracer
            )
            schedule = scheduler.schedule(single_block(seed, 4, library))
            decisions = [
                (e.attrs["op"], e.attrs["side"])
                for e in tracer.events_named("reduction")
            ]
            runs[force_cache] = (decisions, schedule.starts)
        assert runs[True] == runs[False]

    @pytest.mark.parametrize("seed", range(8))
    def test_fds_parity(self, seed, library):
        runs = {}
        for force_cache in (True, False):
            tracer = Tracer()
            scheduler = ForceDirectedScheduler(
                library, force_cache=force_cache, tracer=tracer
            )
            schedule = scheduler.schedule(single_block(seed, 4, library))
            decisions = [
                (e.attrs["op"], e.attrs["step"])
                for e in tracer.events_named("placement")
            ]
            runs[force_cache] = (decisions, schedule.starts)
        assert runs[True] == runs[False]

    def test_ifds_cache_saves_evaluations(self, library):
        counts = {}
        for force_cache in (True, False):
            tracer = Tracer()
            scheduler = ImprovedForceDirectedScheduler(
                library, force_cache=force_cache, tracer=tracer
            )
            scheduler.schedule(single_block(3, 6, library))
            counts[force_cache] = tracer.counters.as_dict()["force_evaluations"]
        assert counts[True] < counts[False]
