"""Tests for analysis metrics."""

import pytest

from repro.analysis.metrics import area_breakdown, mobility_histogram, static_utilization
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def small_result():
    library = default_library()
    system = SystemSpec(name="s")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=4))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("multiplier", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"multiplier": 2})
    )


class TestAreaBreakdown:
    def test_items_match_instance_counts(self):
        result = small_result()
        items = {item.type_name: item for item in area_breakdown(result)}
        counts = result.instance_counts()
        assert set(items) == set(counts)
        for name, item in items.items():
            assert item.instances == counts[name]

    def test_total_matches_result_area(self):
        result = small_result()
        total = sum(item.total_area for item in area_breakdown(result))
        assert total == pytest.approx(result.total_area())

    def test_unit_area_from_library(self):
        result = small_result()
        items = {item.type_name: item for item in area_breakdown(result)}
        assert items["multiplier"].unit_area == 4.0


class TestStaticUtilization:
    def test_utilization_in_unit_range(self):
        result = small_result()
        for name in result.instance_counts():
            assert 0.0 < static_utilization(result, name) <= 1.0

    def test_unused_type_zero(self):
        assert static_utilization(small_result(), "subtracter") == 0.0


class TestMobilityHistogram:
    def test_chain_has_uniform_mobility(self):
        library = default_library()
        graph = DataFlowGraph(name="c")
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        graph.add_edge("a", "b")
        block = Block(name="c", graph=graph, deadline=4)
        histogram = mobility_histogram(block, library)
        assert histogram == {2: 2}

    def test_zero_mobility_at_critical_deadline(self):
        library = default_library()
        graph = DataFlowGraph(name="c")
        graph.add("a", OpKind.ADD)
        graph.add("b", OpKind.ADD)
        graph.add_edge("a", "b")
        block = Block(name="c", graph=graph, deadline=2)
        assert mobility_histogram(block, library) == {0: 2}
