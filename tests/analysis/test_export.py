"""Tests for JSON result export."""

import json

from repro.analysis.export import export_result, result_to_dict, result_to_json
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def make_result():
    library = default_library()
    system = SystemSpec(name="exp")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a", OpKind.ADD)
        graph.add("m", OpKind.MUL)
        graph.add_edge("a", "m")
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=6))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("multiplier", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"multiplier": 3})
    )


class TestExport:
    def test_dict_contents(self):
        result = make_result()
        data = result_to_dict(result)
        assert data["system"] == "exp"
        assert data["area"] == result.total_area()
        assert data["instance_counts"] == result.instance_counts()
        assert data["processes"]["p1"]["blocks"]["main"]["starts"] == (
            result.schedule_of("p1", "main").starts
        )
        auth = data["global_types"]["multiplier"]["authorizations"]["p1"]
        assert auth == result.authorization("p1", "multiplier").tolist()

    def test_json_round_trips_through_parser(self):
        text = result_to_json(make_result())
        parsed = json.loads(text)
        assert parsed["global_types"]["multiplier"]["period"] == 3

    def test_deterministic_apart_from_timing(self):
        first = result_to_dict(make_result())
        second = result_to_dict(make_result())
        first.pop("wall_time_seconds")
        second.pop("wall_time_seconds")
        assert first == second

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "result.json"
        export_result(make_result(), path)
        parsed = json.loads(path.read_text(encoding="utf-8"))
        assert parsed["system"] == "exp"

    def test_offsets_exported(self):
        result = make_result()
        result.start_offsets = {"p2": 1}
        data = result_to_dict(result)
        assert data["start_offsets"] == {"p1": 0, "p2": 1}
