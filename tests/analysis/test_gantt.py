"""Tests for the ASCII Gantt renderer."""

from repro.analysis.gantt import block_gantt, system_gantt, usage_gantt
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.scheduling.schedule import BlockSchedule


def make_schedule():
    library = default_library()
    graph = DataFlowGraph(name="g")
    graph.add("a1", OpKind.ADD)
    graph.add("m1", OpKind.MUL)
    graph.add_edge("a1", "m1")
    return BlockSchedule(
        graph=graph, library=library, starts={"a1": 0, "m1": 1}, deadline=4
    )


class TestBlockGantt:
    def test_bars_reflect_occupancy_and_latency(self):
        text = block_gantt(make_schedule(), label_width=6)
        lines = text.splitlines()
        add_row = next(l for l in lines if l.startswith("+a1"))
        mul_row = next(l for l in lines if l.startswith("*m1"))
        assert add_row[6] == "#"
        # Pipelined multiplier: one '#' issue step, one '-' in-flight step.
        assert mul_row[7] == "#"
        assert mul_row[8] == "-"

    def test_groups_by_type(self):
        text = block_gantt(make_schedule())
        assert "-- adder --" in text
        assert "-- multiplier --" in text

    def test_header_has_step_digits(self):
        assert "0123" in block_gantt(make_schedule())


class TestUsageGantt:
    def test_counts_and_dots(self):
        row = usage_gantt(make_schedule(), "adder")
        assert row.endswith("1...")


class TestSystemGantt:
    def test_all_blocks_rendered(self):
        library = default_library()
        system = SystemSpec(name="s")
        for name in ("p1", "p2"):
            graph = DataFlowGraph(name=f"{name}-g")
            graph.add("a", OpKind.ADD)
            process = Process(name=name)
            process.add_block(Block(name="main", graph=graph, deadline=2))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", ["p1", "p2"])
        result = ModuloSystemScheduler(library).schedule(
            system, assignment, PeriodAssignment({"adder": 2})
        )
        text = system_gantt(result)
        assert "=== p1/main ===" in text
        assert "=== p2/main ===" in text
