"""Differential soundness of the residue-pressure intervals.

The abstract interpretation claims, per (type, slot residue class), a
lower/upper occupancy interval valid for *any* grid-admissible schedule.
These tests pit that claim against two independent oracles over the
paper system, ten corpus instances, and twenty random systems:

* the exact symbolic certifier (full coset enumeration, no fast path)
  — its proven peak must land inside the problem-mode interval and
  under the schedule-mode upper bound;
* the cycle-accurate simulator — every observed occupancy sample must
  stay at or below the interval upper bounds, for every seed.

Plus the adversarial direction: a hand-tightened interval fast-path
proof must be rejected by the checker's independent re-derivation.
"""

import dataclasses

import pytest

from repro.analysis.absint import (
    MODEL_ANY,
    analyze_problem,
    analyze_schedule,
)
from repro.analysis.static import (
    METHOD_INTERVAL,
    Certificate,
    certify,
    check_certificate,
)
from repro.api import Problem
from repro.core.periods import PeriodAssignment
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.sim.simulator import SystemSimulator
from repro.workloads import (
    corpus_system,
    paper_assignment,
    paper_periods,
    paper_system,
    random_dfg,
)

#: Simulation sampling: seeds x cycles per soundness subject.
SIM_SEEDS = (0, 1)
SIM_CYCLES = 300


# ----------------------------------------------------------------------
# Subjects: paper + 10 corpus instances + 20 random systems
# ----------------------------------------------------------------------
def paper_problem() -> Problem:
    system, library = paper_system()
    return Problem(system, library, paper_assignment(library), paper_periods())


def corpus_problem(seed: int) -> Problem:
    instance = corpus_system(3, seed=seed)
    return Problem(
        instance.system,
        instance.library,
        instance.assignment,
        instance.periods,
    )


def random_problem(seed: int) -> Problem:
    """A small random multi-process system with everything shared."""
    library = default_library()
    system = SystemSpec(name=f"rand-s{seed}")
    processes = 2 + seed % 2
    for index in range(processes):
        graph = random_dfg(4 + (seed + index) % 5, seed=seed * 31 + index)
        deadline = graph.critical_path_length(library.latency_of) + 2 + seed % 3
        process = Process(name=f"p{index}")
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment.all_global(library, system)
    periods = PeriodAssignment(
        {type_name: 2 + seed % 3 for type_name in assignment.global_types}
    )
    return Problem(system, library, assignment, periods)


CORPUS_SEEDS = range(10)
RANDOM_SEEDS = range(20)

SUBJECTS = (
    [pytest.param(paper_problem, None, id="paper")]
    + [
        pytest.param(corpus_problem, seed, id=f"corpus-s{seed}")
        for seed in CORPUS_SEEDS
    ]
    + [
        pytest.param(random_problem, seed, id=f"rand-s{seed}")
        for seed in RANDOM_SEEDS
    ]
)


def build(factory, seed):
    problem = factory() if seed is None else factory(seed)
    problem.validate()
    return problem


# ----------------------------------------------------------------------
# Interval ⊇ certifier exact peak
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory,seed", SUBJECTS)
def test_intervals_contain_the_exact_peak(factory, seed):
    problem = build(factory, seed)
    if not problem.assignment.global_types:
        pytest.skip("no shared types in this draw")
    result = problem.schedule()
    certificate = certify(result, fast_path=False)
    assert certificate.safe, certificate.verdict
    pre = analyze_problem(problem)
    post = analyze_schedule(result)
    for proof in certificate.types:
        before = pre.pressure(proof.type_name)
        after = post.pressure(proof.type_name)
        # Problem mode brackets the exact enumerated peak: the deployed
        # schedule is one grid-admissible schedule, so its worst-case
        # rotation peak sits inside [lower, upper].
        assert before.lower_peak <= proof.proven_peak, proof.type_name
        assert proof.proven_peak <= before.upper_peak, proof.type_name
        # Schedule mode refines problem mode and still dominates the
        # enumerated peak of its own rotations.
        assert after.lower_peak <= proof.proven_peak <= after.upper_peak
        assert before.lower_peak <= after.lower_peak
        assert after.upper_peak <= before.upper_peak
        # The derived pool always covers the proven demand.
        assert proof.pool is not None and proof.proven_peak <= proof.pool


@pytest.mark.parametrize(
    "factory,seed",
    [pytest.param(paper_problem, None, id="paper")]
    + [
        pytest.param(random_problem, seed, id=f"rand-s{seed}")
        for seed in RANDOM_SEEDS
    ],
)
def test_any_offset_intervals_contain_the_any_offset_peak(factory, seed):
    """Worst-case-over-rotations enumeration stays inside the ANY model."""
    problem = build(factory, seed)
    if not problem.assignment.global_types:
        pytest.skip("no shared types in this draw")
    result = problem.schedule()
    certificate = certify(result, offset_model=MODEL_ANY, fast_path=False)
    pre = analyze_problem(problem, offset_model=MODEL_ANY)
    for proof in certificate.types:
        entry = pre.pressure(proof.type_name)
        assert entry.lower_peak <= proof.proven_peak <= entry.upper_peak


# ----------------------------------------------------------------------
# Interval ⊇ every simulated occupancy sample
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory,seed", SUBJECTS)
def test_intervals_contain_every_simulated_sample(factory, seed):
    problem = build(factory, seed)
    if not problem.assignment.global_types:
        pytest.skip("no shared types in this draw")
    result = problem.schedule()
    pre = analyze_problem(problem)
    post = analyze_schedule(result)
    for sim_seed in SIM_SEEDS:
        stats = SystemSimulator(result, seed=sim_seed).run(SIM_CYCLES)
        assert stats.ok, stats.trace.violations
        for type_name in problem.assignment.global_types:
            observed = stats.peak_usage.get(type_name, 0)
            assert observed <= post.pressure(type_name).upper_peak, (
                type_name,
                sim_seed,
            )
            assert observed <= pre.pressure(type_name).upper_peak


# ----------------------------------------------------------------------
# Adversarial: tightened fast-path intervals never pass the checker
# ----------------------------------------------------------------------
def with_proof(certificate: Certificate, proof) -> Certificate:
    types = [
        proof if p.type_name == proof.type_name else p
        for p in certificate.types
    ]
    return dataclasses.replace(certificate, types=types)


def test_hand_tightened_interval_is_rejected():
    problem = paper_problem()
    result = problem.schedule()
    certificate = certify(result)  # fast path on
    proofs = [p for p in certificate.types if p.method == METHOD_INTERVAL]
    assert proofs, "paper system should admit interval fast-path proofs"
    assert check_certificate(certificate, result) == []
    for proof in proofs:
        tightened = dataclasses.replace(proof, proven_peak=proof.proven_peak - 1)
        problems = check_certificate(with_proof(certificate, tightened), result)
        assert problems, proof.type_name
        assert any("interval" in problem for problem in problems)
