"""Unit tests for the residue-pressure domain, transfer functions,
bottleneck-cone extraction, and the ``repro analyze`` command."""

import json

import pytest

from repro.analysis.absint import (
    AbsIntResult,
    analyze_problem,
    analyze_schedule,
    block_step_profiles,
    effective_busy,
    extract_bottleneck_cone,
    fold_profiles,
    mobility_frames,
)
from repro.api import Problem
from repro.cli import main
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.library import default_library
from repro.workloads import paper_assignment, paper_periods, paper_system

LIBRARY = default_library()


def chain_block(deadline: int = 6) -> Block:
    """a0 -> a1 (adds) plus a free mul; unit latencies by default lib."""
    graph = DataFlowGraph(name="chain")
    graph.add("a0", OpKind.ADD)
    graph.add("a1", OpKind.ADD)
    graph.add("m0", OpKind.MUL)
    graph.add_edge("a0", "a1")
    return Block(name="main", graph=graph, deadline=deadline)


def paper_problem() -> Problem:
    system, library = paper_system()
    return Problem(system, library, paper_assignment(library), paper_periods())


# ----------------------------------------------------------------------
# Transfer functions
# ----------------------------------------------------------------------
class TestMobilityFrames:
    def test_chain_frames(self):
        frames = mobility_frames(chain_block(deadline=6), LIBRARY)
        lat = LIBRARY.latency_of
        add_latency = lat(chain_block().graph.operation("a0"))
        # a0 must finish before a1; a1 must fit before the deadline.
        asap0, alap0 = frames["a0"]
        asap1, alap1 = frames["a1"]
        assert asap0 == 0
        assert asap1 == add_latency
        assert alap1 + add_latency <= 6
        assert alap0 + add_latency <= alap1

    def test_infeasible_frame_clamps(self):
        # Deadline 1 cannot hold a two-add chain: alap < asap for a1.
        frames = mobility_frames(chain_block(deadline=1), LIBRARY)
        for asap, alap in frames.values():
            assert asap <= alap


class TestBlockStepProfiles:
    def test_problem_mode_brackets_schedule_mode(self):
        block = chain_block(deadline=6)
        flo, up = block_step_profiles(block, LIBRARY, "adder")
        # Any feasible placement: here the ASAP one.
        exact_lo, exact_hi = block_step_profiles(
            block, LIBRARY, "adder", starts={"a0": 0, "a1": 1, "m0": 0}
        )
        assert exact_lo == exact_hi
        for j in range(6):
            assert flo[j] <= exact_hi[j] <= up[j]

    def test_schedule_mode_is_exact(self):
        block = chain_block(deadline=6)
        flo, up = block_step_profiles(
            block, LIBRARY, "adder", starts={"a0": 0, "a1": 1, "m0": 0}
        )
        assert flo == up
        assert sum(up) == 2 * LIBRARY.type("adder").occupancy

    def test_guarded_ops_count_heaviest_branch(self):
        graph = DataFlowGraph(name="g")
        graph.add("t0", OpKind.ADD, guard=("c", "t"))
        graph.add("t1", OpKind.ADD, guard=("c", "t"))
        graph.add("f0", OpKind.ADD, guard=("c", "f"))
        block = Block(name="main", graph=graph, deadline=2)
        flo, up = block_step_profiles(block, LIBRARY, "adder")
        # Two ops on the taken branch dominate the one on the other.
        assert max(up) == 2
        # The lower profile never exceeds the upper one.
        assert all(lo <= hi for lo, hi in zip(flo, up))

    def test_effective_busy_is_guard_aware(self):
        graph = DataFlowGraph(name="g")
        graph.add("u", OpKind.ADD)
        graph.add("t0", OpKind.ADD, guard=("c", "t"))
        graph.add("t1", OpKind.ADD, guard=("c", "t"))
        graph.add("f0", OpKind.ADD, guard=("c", "f"))
        block = Block(name="main", graph=graph, deadline=4)
        occ = LIBRARY.type("adder").occupancy
        # One unguarded op plus the heavier (two-op) branch.
        assert effective_busy(block, LIBRARY, "adder") == 3 * occ


class TestFoldProfiles:
    def test_fold_takes_the_max_per_residue(self):
        flo = [1, 0, 2, 0, 0, 3]
        up = [1, 1, 2, 1, 1, 3]
        lo_fold, hi_fold, widened = fold_profiles(flo, up, 3)
        assert not widened
        assert lo_fold == [1, 0, 3]
        assert hi_fold == [1, 1, 3]

    def test_widening_keeps_the_upper_bound_sound(self):
        steps = 12
        up = [1] * steps
        up[-1] = 4
        flo = [0] * steps
        lo_fold, hi_fold, widened = fold_profiles(
            flo, up, 2, widen_limit=2
        )
        assert widened
        # The tail's pointwise max (4) widens every touched residue.
        assert all(hi >= 4 for hi in hi_fold)
        assert lo_fold == [0, 0]

    def test_widening_never_triggers_below_the_limit(self):
        lo_fold, hi_fold, widened = fold_profiles(
            [0] * 4, [1] * 4, 2, widen_limit=2
        )
        assert not widened
        assert hi_fold == [1, 1]


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_problem_analysis_round_trips(self):
        analysis = analyze_problem(paper_problem())
        clone = AbsIntResult.from_json(analysis.to_json())
        assert clone.as_dict() == analysis.as_dict()

    def test_schedule_analysis_round_trips(self):
        result = paper_problem().schedule()
        analysis = analyze_schedule(result)
        clone = AbsIntResult.from_json(analysis.to_json())
        assert clone.as_dict() == analysis.as_dict()

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            AbsIntResult.from_dict({"format": "something-else"})


# ----------------------------------------------------------------------
# Bottleneck cone
# ----------------------------------------------------------------------
class TestBottleneckCone:
    @pytest.fixture(scope="class")
    def paper_schedule(self):
        return paper_problem().schedule()

    def test_cone_carries_the_conflict_triple(self, paper_schedule):
        cone = extract_bottleneck_cone(paper_schedule)
        assert cone.conflict.type_name == cone.type_name
        assert cone.conflict.slot == cone.slot
        assert cone.processes
        assert cone.lower_peak <= cone.upper_peak

    def test_contributing_ops_fold_onto_the_slot(self, paper_schedule):
        cone = extract_bottleneck_cone(paper_schedule)
        result = paper_schedule
        contributing = [op for op in cone.ops if op.contributing]
        assert contributing
        for op in contributing:
            rtype = result.library.type(cone.type_name)
            rotation = result.offset_of(op.process) % cone.period
            busy = range(op.start, op.start + rtype.occupancy)
            assert any(
                (rotation + j) % cone.period == cone.slot for j in busy
            ), op.ref

    def test_edges_connect_cone_ops(self, paper_schedule):
        cone = extract_bottleneck_cone(paper_schedule)
        refs = {op.ref for op in cone.ops}
        for src, dst in cone.edges:
            assert src in refs and dst in refs

    def test_type_selection(self, paper_schedule):
        cone = extract_bottleneck_cone(paper_schedule, type_name="multiplier")
        assert cone.type_name == "multiplier"

    def test_render_and_json(self, paper_schedule):
        cone = extract_bottleneck_cone(paper_schedule)
        text = cone.render()
        assert "bottleneck cone" in text
        payload = json.loads(cone.to_json())
        assert payload["type"] == cone.type_name
        assert payload["ops"]

    def test_empty_analysis_rejected(self):
        library = default_library()
        system = SystemSpec(name="solo")
        graph = DataFlowGraph(name="g")
        graph.add("a0", OpKind.ADD)
        process = Process(name="p1")
        process.add_block(Block(name="main", graph=graph, deadline=4))
        system.add_process(process)
        from repro.resources.assignment import ResourceAssignment

        result = Problem(
            system,
            library,
            ResourceAssignment(library),
            paper_periods().__class__({}),
        ).schedule()
        with pytest.raises(ValueError, match="no global types"):
            extract_bottleneck_cone(result)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestAnalyzeCommand:
    @pytest.fixture
    def sys_file(self, tmp_path):
        path = tmp_path / "paper.sys"
        path.write_text(paper_problem().dumps(), encoding="utf-8")
        return str(path)

    def test_schedule_mode_text(self, sys_file, capsys):
        assert main(["analyze", sys_file]) == 0
        out = capsys.readouterr().out
        assert "residue pressure" in out
        assert "bottleneck cone" in out

    def test_problem_mode_json(self, sys_file, capsys):
        assert main(["analyze", sys_file, "--mode", "problem", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-absint"
        assert payload["mode"] == "problem"
        assert payload["types"]

    def test_type_selection_and_no_cone(self, sys_file, capsys):
        assert main(
            ["analyze", sys_file, "--type", "adder", "--no-cone"]
        ) == 0
        out = capsys.readouterr().out
        assert "adder" in out
        assert "bottleneck cone" not in out

    def test_output_file(self, sys_file, tmp_path, capsys):
        target = tmp_path / "analysis.json"
        assert main(
            ["analyze", sys_file, "--format", "json", "-o", str(target)]
        ) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-absint"
