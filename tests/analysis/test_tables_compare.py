"""Tests for table rendering and the global/local comparison harness."""

import pytest

from repro.analysis.compare import compare_scopes
from repro.analysis.tables import table1, usage_table
from repro.core.periods import PeriodAssignment
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def build_inputs():
    library = default_library()
    system = SystemSpec(name="s")
    for name in ("p1", "p2", "p3"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a0", OpKind.ADD)
        graph.add("a1", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=6))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2", "p3"])
    return system, library, assignment, PeriodAssignment({"adder": 3})


class TestCompareScopes:
    def test_global_saves_area_on_sparse_system(self):
        comparison = compare_scopes(*build_inputs())
        assert comparison.global_area < comparison.local_area
        assert comparison.area_ratio > 1.0
        assert 0.0 < comparison.area_saving < 1.0

    def test_local_baseline_has_no_global_types(self):
        comparison = compare_scopes(*build_inputs())
        assert comparison.local_result.assignment.global_types == []

    def test_render_mentions_both_runs(self):
        text = compare_scopes(*build_inputs()).render()
        assert "global:" in text
        assert "local :" in text
        assert "saves" in text

    def test_ratio_consistent_with_saving(self):
        comparison = compare_scopes(*build_inputs())
        assert comparison.area_saving == pytest.approx(
            1.0 - 1.0 / comparison.area_ratio
        )


class TestTableRendering:
    def test_table1_sections(self):
        system, library, assignment, periods = build_inputs()
        comparison = compare_scopes(system, library, assignment, periods)
        text = table1(comparison.global_result)
        assert "global type 'adder'" in text
        assert "p1" in text
        assert "area cost" in text
        assert "all" in text

    def test_table1_on_local_run_lists_local_instances(self):
        system, library, assignment, periods = build_inputs()
        comparison = compare_scopes(system, library, assignment, periods)
        text = table1(comparison.local_result)
        assert "local instances:" in text

    def test_usage_table_lists_blocks(self):
        system, library, assignment, periods = build_inputs()
        comparison = compare_scopes(system, library, assignment, periods)
        text = usage_table(comparison.global_result, "adder")
        assert "p1/main" in text
