"""Tests for the interconnect (multiplexer) cost model."""

import pytest

from repro.analysis.interconnect import (
    DEFAULT_MUX_ALPHA,
    interconnect_report,
    total_area_with_interconnect,
)
from repro.binding.instances import bind_instances
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def shared_binding(n_ops_per_proc=2, deadline=6, share=True):
    library = default_library()
    system = SystemSpec(name="ic")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        for i in range(n_ops_per_proc):
            graph.add(f"a{i}", OpKind.ADD)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    periods = None
    if share:
        assignment.make_global("adder", ["p1", "p2"])
        periods = PeriodAssignment({"adder": 3})
    result = ModuloSystemScheduler(library).schedule(system, assignment, periods)
    return bind_instances(result)


class TestInterconnectReport:
    def test_every_used_unit_reported(self):
        binding = shared_binding()
        report = interconnect_report(binding)
        bound_units = {
            ("adder", f"g{i}") for i in set(binding.binding.values())
        }
        assert set(report.sources_per_unit) == bound_units

    def test_source_count_grows_with_sharing(self):
        """One shared adder serving 4 source-less adds sees 2 input
        sources per op (all primary inputs)."""
        report = interconnect_report(shared_binding())
        assert report.largest_mux() == 4 * 2

    def test_mux_area_zero_for_single_source_per_port(self):
        # One op per process, local: each unit serves one op -> fan-in 2
        # sources over 2 ports -> 1 per port -> no mux.
        binding = shared_binding(n_ops_per_proc=1, share=False)
        report = interconnect_report(binding)
        assert report.mux_area == 0.0

    def test_mux_area_scales_with_alpha(self):
        binding = shared_binding()
        base = interconnect_report(binding, mux_alpha=0.3).mux_area
        double = interconnect_report(binding, mux_alpha=0.6).mux_area
        assert double == pytest.approx(2 * base)


class TestTotalArea:
    def test_components_sum(self):
        binding = shared_binding()
        areas = total_area_with_interconnect(binding)
        assert areas["total"] == pytest.approx(
            areas["functional"] + areas["mux"]
        )
        assert areas["functional"] == binding.result.total_area()

    def test_sharing_raises_mux_cost(self):
        shared = total_area_with_interconnect(shared_binding())
        local = total_area_with_interconnect(shared_binding(share=False))
        assert shared["functional"] <= local["functional"]
        assert shared["mux"] >= local["mux"]

    def test_default_alpha_constant(self):
        assert 0 < DEFAULT_MUX_ALPHA < 1
