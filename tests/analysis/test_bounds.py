"""Tests for the instance-count lower bounds."""

import pytest

from repro.analysis.bounds import (
    block_bound,
    bound_report,
    global_pool_bound,
    process_bound,
    process_slot_density,
)
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import paper_assignment, paper_periods, paper_system


def adds_block(n, deadline):
    graph = DataFlowGraph(name="g")
    for i in range(n):
        graph.add(f"a{i}", OpKind.ADD)
    return Block(name="main", graph=graph, deadline=deadline)


@pytest.fixture
def library():
    return default_library()


class TestBlockBound:
    def test_averaging(self, library):
        assert block_bound(adds_block(6, 3), library, "adder") == 2
        assert block_bound(adds_block(6, 6), library, "adder") == 1
        assert block_bound(adds_block(7, 3), library, "adder") == 3

    def test_unused_type_zero(self, library):
        assert block_bound(adds_block(2, 4), library, "multiplier") == 0


class TestProcessBound:
    def test_max_over_blocks(self, library):
        process = Process(name="p")
        process.add_block(adds_block(6, 3))
        b2 = adds_block(2, 4)
        b2.name = "other"
        process.add_block(b2)
        assert process_bound(process, library, "adder") == 2


class TestSlotDensity:
    def test_exact_when_period_divides(self, library):
        process = Process(name="p", blocks=[adds_block(6, 12)])
        assert process_slot_density(process, library, "adder", 4) == pytest.approx(0.5)

    def test_weaker_when_period_does_not_divide(self, library):
        process = Process(name="p", blocks=[adds_block(6, 10)])
        # coverage = ceil(10/4) = 3 -> density 6 / 12.
        assert process_slot_density(process, library, "adder", 4) == pytest.approx(0.5)


class TestGlobalPoolBound:
    def make(self, sizes, deadline=12, period=4):
        library = default_library()
        system = SystemSpec(name="s")
        for index, n in enumerate(sizes):
            process = Process(name=f"p{index}")
            process.add_block(adds_block(n, deadline))
            system.add_process(process)
        assignment = ResourceAssignment(library)
        assignment.make_global("adder", [f"p{i}" for i in range(len(sizes))])
        periods = PeriodAssignment({"adder": period})
        return system, library, assignment, periods

    def test_density_sum(self):
        system, library, assignment, periods = self.make([6, 6])
        # densities 0.5 + 0.5 -> pool >= 1.
        assert global_pool_bound(system, library, assignment, periods, "adder") == 1

    def test_per_member_floor(self):
        system, library, assignment, periods = self.make([12, 2])
        # p0 alone needs ceil(12/12) = 1; densities sum to 7/6 -> 2.
        assert global_pool_bound(system, library, assignment, periods, "adder") == 2

    def test_bound_is_sound_against_scheduler(self):
        system, library, assignment, periods = self.make([5, 4, 3])
        bound = global_pool_bound(system, library, assignment, periods, "adder")
        result = ModuloSystemScheduler(library).schedule(system, assignment, periods)
        assert result.global_instances("adder") >= bound


class TestBoundReport:
    def test_paper_system_bounds_hold(self):
        system, library = paper_system()
        result = ModuloSystemScheduler(library).schedule(
            system, paper_assignment(library), paper_periods()
        )
        report = bound_report(result)
        for type_name, entry in report.items():
            assert entry["achieved"] >= entry["bound"], type_name
        # The multiplier pool is provably near-optimal: bound 2 (densities
        # 3 * 8/30 + 2 * 6/15 = 1.6), achieved 2.
        assert report["multiplier"]["bound"] == 2

    def test_local_run_bounds(self):
        system, library = paper_system()
        result = ModuloSystemScheduler(library).schedule(
            system, ResourceAssignment.all_local(library)
        )
        report = bound_report(result)
        for entry in report.values():
            assert entry["achieved"] >= entry["bound"]
        # Locally every process needs >= 1 of each type it uses; the
        # deadline-25 wave filter needs ceil(26/25) = 2 adders.
        assert report["adder"]["bound"] == 6
        assert report["subtracter"]["bound"] == 2
