"""Tests for the bottleneck attribution layer and the run report."""

import json

import pytest

from repro.analysis.attribution import attribute
from repro.analysis.report import run_report
from repro.analysis.static.certifier import pool_conflict
from repro.core.scheduler import ModuloSystemScheduler
from repro.obs import AuditTrail
from repro.scheduling.forces import area_weights
from repro.workloads import paper_assignment, paper_periods, paper_system


@pytest.fixture(scope="module")
def paper_run():
    system, library = paper_system()
    audit = AuditTrail()
    scheduler = ModuloSystemScheduler(
        library, weights=area_weights(library), audit=audit
    )
    result = scheduler.schedule(
        system, paper_assignment(library), paper_periods()
    )
    return result, audit


class TestCertifierConsistency:
    def test_every_global_entry_matches_pool_conflict(self, paper_run):
        """The acceptance criterion: each (type, slot, processes)
        triple must be exactly what the certifier's own conflict
        construction reports for that type's pool."""
        result, _ = paper_run
        report = attribute(result)
        global_entries = [e for e in report.entries if e.scope == "global"]
        assert global_entries, "the paper system has global pools"
        for entry in global_entries:
            conflict = pool_conflict(
                result, entry.type_name, result.global_instances(entry.type_name)
            )
            assert entry.slot == conflict.slot
            assert entry.period == conflict.period
            assert entry.demand == conflict.demand
            assert list(entry.processes) == list(conflict.processes)
            assert entry.triple() == conflict.triple()

    def test_bottleneck_names_a_triple(self, paper_run):
        result, _ = paper_run
        bottleneck = attribute(result).bottleneck
        assert bottleneck is not None
        triple = bottleneck.triple()
        assert triple.startswith(f"(type {bottleneck.type_name!r}, slot ")
        for process in bottleneck.processes:
            assert process in triple


class TestOperations:
    def test_contributing_ops_are_active_at_the_witness_step(self, paper_run):
        result, _ = paper_run
        report = attribute(result)
        for entry in report.entries:
            if entry.scope != "global":
                continue
            assert entry.operations, "a conflicting slot has active ops"
            for op in entry.operations:
                sched = result.schedule_of(op.process, op.block)
                occupancy = result.library.type(entry.type_name).occupancy
                assert op.start == sched.starts[op.op]
                assert op.start <= op.step < op.start + occupancy
                op_type = result.library.type_of(
                    sched.graph.operation(op.op)
                )
                assert op_type.name == entry.type_name

    def test_demand_is_backed_by_enough_operations(self, paper_run):
        """At least ``demand`` distinct operations stand behind each
        conflicting slot (guard branches can add more than demand)."""
        result, _ = paper_run
        for entry in attribute(result).entries:
            if entry.scope == "global":
                assert len(entry.operations) >= entry.demand


class TestRanking:
    def test_entries_cover_the_total_area(self, paper_run):
        result, _ = paper_run
        report = attribute(result)
        assert sum(e.area for e in report.entries) == pytest.approx(
            report.total_area
        )
        areas = [e.area for e in report.entries]
        assert areas == sorted(areas, reverse=True)

    def test_local_baseline_has_no_conflict_triples(self):
        system, library = paper_system()
        from repro.resources.assignment import ResourceAssignment

        result = ModuloSystemScheduler(
            library, weights=area_weights(library)
        ).schedule(system, ResourceAssignment.all_local(library))
        report = attribute(result)
        assert report.bottleneck is None
        assert all(e.scope == "local" for e in report.entries)
        assert all(e.slot is None for e in report.entries)


class TestAuditEnrichment:
    def test_audit_counts_decisions_behind_the_bottleneck(self, paper_run):
        result, audit = paper_run
        enriched = attribute(result, audit=audit)
        assert enriched.bottleneck.audit_decisions > 0
        # Exported records work the same as the live trail.
        replayed = attribute(result, audit=audit.as_records())
        assert (
            replayed.bottleneck.audit_decisions
            == enriched.bottleneck.audit_decisions
        )
        # Without an audit the counts are zero, everything else equal.
        bare = attribute(result)
        assert bare.bottleneck.audit_decisions == 0
        assert bare.bottleneck.triple() == enriched.bottleneck.triple()


class TestRendering:
    def test_text_render_names_the_triples(self, paper_run):
        result, _ = paper_run
        report = attribute(result)
        text = report.render()
        for entry in report.entries:
            if entry.scope == "global":
                assert entry.triple() in text
        assert "of total" in text

    def test_markdown_has_table_and_details(self, paper_run):
        result, _ = paper_run
        text = attribute(result).render_markdown()
        assert "| rank | type | scope |" in text
        assert text.count("###") >= 1

    def test_json_round_trips(self, paper_run):
        result, _ = paper_run
        report = attribute(result)
        data = json.loads(report.as_json())
        assert data["system"] == result.system.name
        assert data["total_area"] == result.total_area()
        globals_ = [e for e in data["entries"] if e["scope"] == "global"]
        for entry in globals_:
            assert {"slot", "period", "demand", "processes", "operations"} <= (
                set(entry)
            )


class TestRunReport:
    def test_report_composes_all_sections(self, paper_run):
        result, audit = paper_run
        report = run_report(result, audit=audit, source="paper.sys")
        markdown = report.render_markdown()
        assert "# Run report: `paper.sys`" in markdown
        assert "## Schedule" in markdown
        assert "## Area" in markdown
        assert "## Profile" in markdown
        assert "## Area attribution" in markdown

    def test_report_json_is_machine_readable(self, paper_run):
        result, audit = paper_run
        data = json.loads(run_report(result, audit=audit).as_json())
        assert data["system"] == result.system.name
        assert data["attribution"]["entries"]
        assert {row["type"] for row in data["area"]} == set(
            result.instance_counts()
        )
