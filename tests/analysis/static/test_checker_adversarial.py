"""Adversarial tests for the certificate checker.

A checker that only ever sees honest certificates proves nothing: these
tests tamper with every load-bearing field of a valid certificate —
witnesses, envelopes, rotation sets, coverage counts, verdicts, and
counterexamples — and assert that :func:`check_certificate` rejects each
corruption with a concrete problem string.
"""

import dataclasses

import pytest

from repro.analysis.static import (
    VERDICT_SAFE,
    VERDICT_UNSAFE,
    Certificate,
    certify,
    check_certificate,
)
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library


def scheduled_system():
    library = default_library()
    system = SystemSpec(name="adv")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a0", OpKind.ADD)
        graph.add("a1", OpKind.ADD)
        graph.add("a2", OpKind.ADD)
        graph.add_edge("a0", "a1")
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=8))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": 4})
    )


@pytest.fixture(scope="module")
def result():
    return scheduled_system()


@pytest.fixture
def certificate(result):
    # Enumeration proofs: the tampering below targets the exact-peak
    # re-check; interval fast-path proofs get their own class.
    return certify(result, fast_path=False)


@pytest.fixture
def fast_certificate(result):
    return certify(result)


def with_proof(certificate, proof):
    """Clone the certificate with one proof swapped in."""
    types = [
        proof if p.type_name == proof.type_name else p for p in certificate.types
    ]
    return Certificate(
        system=certificate.system,
        offset_model=certificate.offset_model,
        verdict=certificate.verdict,
        types=types,
        counterexample=certificate.counterexample,
    )


def test_honest_certificate_passes(certificate, result):
    assert check_certificate(certificate, result) == []


class TestTamperedProofs:
    def test_lowered_peak_rejected(self, certificate, result):
        proof = certificate.proof("adder")
        bad = with_proof(
            certificate, dataclasses.replace(proof, proven_peak=0)
        )
        problems = check_certificate(bad, result)
        assert any("recomputed peak" in p for p in problems)

    def test_inflated_pool_rejected(self, certificate, result):
        proof = certificate.proof("adder")
        bad = with_proof(certificate, dataclasses.replace(proof, pool=99))
        problems = check_certificate(bad, result)
        assert any("pool 99 != allocated" in p for p in problems)

    def test_wrong_period_rejected(self, certificate, result):
        proof = certificate.proof("adder")
        bad = with_proof(certificate, dataclasses.replace(proof, period=5))
        assert check_certificate(bad, result)

    def test_coverage_count_tampering_rejected(self, certificate, result):
        proof = certificate.proof("adder")
        bad = with_proof(
            certificate, dataclasses.replace(proof, classes_total=17)
        )
        problems = check_certificate(bad, result)
        assert any("coverage claims 17" in p for p in problems)

    def test_dropped_proof_rejected(self, certificate, result):
        bad = Certificate(
            system=certificate.system,
            offset_model=certificate.offset_model,
            verdict=certificate.verdict,
            types=[],
        )
        problems = check_certificate(bad, result)
        assert any("has no proof" in p for p in problems)


class TestTamperedEnvelopes:
    def test_understated_envelope_rejected(self, certificate, result):
        proof = certificate.proof("adder")
        env = proof.processes[0]
        zeroed = dataclasses.replace(
            env, envelope=[0] * len(env.envelope), witnesses=[]
        )
        bad = with_proof(
            certificate,
            dataclasses.replace(
                proof, processes=[zeroed] + list(proof.processes[1:])
            ),
        )
        problems = check_certificate(bad, result)
        assert any("does not refold" in p for p in problems)

    def test_tampered_witness_rejected(self, certificate, result):
        proof = certificate.proof("adder")
        env = next(e for e in proof.processes if e.witnesses)
        lied = dataclasses.replace(
            env.witnesses[0], usage=env.witnesses[0].usage + 1
        )
        bad_env = dataclasses.replace(
            env, witnesses=[lied] + list(env.witnesses[1:])
        )
        bad = with_proof(
            certificate,
            dataclasses.replace(
                proof,
                processes=[
                    bad_env if e.process == env.process else e
                    for e in proof.processes
                ],
            ),
        )
        problems = check_certificate(bad, result)
        assert any("not realized" in p for p in problems)

    def test_dropped_witness_rejected(self, certificate, result):
        proof = certificate.proof("adder")
        env = next(e for e in proof.processes if e.witnesses)
        bad_env = dataclasses.replace(env, witnesses=[])
        bad = with_proof(
            certificate,
            dataclasses.replace(
                proof,
                processes=[
                    bad_env if e.process == env.process else e
                    for e in proof.processes
                ],
            ),
        )
        problems = check_certificate(bad, result)
        assert any("has no witness" in p for p in problems)

    def test_widened_rotation_set_rejected(self, certificate, result):
        # Claiming a coarser grid (more admissible rotations) than the
        # deployed configuration must not pass as a "deployed" proof.
        proof = certificate.proof("adder")
        env = proof.processes[0]
        bad_env = dataclasses.replace(env, rotation_step=1, rotation_count=4)
        bad = with_proof(
            certificate,
            dataclasses.replace(
                proof, processes=[bad_env] + list(proof.processes[1:])
            ),
        )
        problems = check_certificate(bad, result)
        assert any("admissible coset" in p for p in problems)


class TestTamperedIntervalProofs:
    def test_honest_fast_path_passes(self, fast_certificate, result):
        assert fast_certificate.proof("adder").method == "interval"
        assert check_certificate(fast_certificate, result) == []

    def test_tightened_interval_bound_rejected(self, fast_certificate, result):
        # Claiming a smaller bound than the re-derived rotation join:
        # the checker recomputes the join from the envelopes it refolds
        # itself, so a hand-tightened proof cannot survive.
        proof = fast_certificate.proof("adder")
        bad = with_proof(
            fast_certificate,
            dataclasses.replace(proof, proven_peak=proof.proven_peak - 1),
        )
        problems = check_certificate(bad, result)
        assert any("recomputed interval bound" in p for p in problems)

    def test_unsafe_interval_claim_rejected(self, fast_certificate, result):
        # The fast path never refutes: an interval proof whose claimed
        # peak exceeds its pool is a forgery even when the bound itself
        # re-derives (the pool override keeps the allocation check quiet
        # so the method-specific check is what fires).
        proof = fast_certificate.proof("adder")
        tampered_pool = proof.proven_peak - 1
        bad = with_proof(
            fast_certificate, dataclasses.replace(proof, pool=tampered_pool)
        )
        problems = check_certificate(bad, result, pools={"adder": tampered_pool})
        assert any("fast path never refutes" in p for p in problems)

    def test_nonzero_enumeration_count_rejected(self, fast_certificate, result):
        proof = fast_certificate.proof("adder")
        bad = with_proof(
            fast_certificate, dataclasses.replace(proof, classes_checked=5)
        )
        problems = check_certificate(bad, result)
        assert any("enumerates none" in p for p in problems)

    def test_unknown_method_rejected(self, fast_certificate, result):
        proof = fast_certificate.proof("adder")
        bad = with_proof(
            fast_certificate, dataclasses.replace(proof, method="vibes")
        )
        problems = check_certificate(bad, result)
        assert any("unknown proof method" in p for p in problems)


class TestTamperedVerdicts:
    def test_unsafe_without_counterexample_rejected(self, certificate, result):
        certificate.verdict = VERDICT_UNSAFE
        problems = check_certificate(certificate, result)
        assert any("without a counterexample" in p for p in problems)

    def test_unknown_verdict_rejected(self, certificate, result):
        certificate.verdict = "trust-me"
        problems = check_certificate(certificate, result)
        assert any("unknown verdict" in p for p in problems)

    def test_wrong_system_rejected(self, certificate, result):
        certificate.system = "other"
        problems = check_certificate(certificate, result)
        assert any("is for system" in p for p in problems)

    def test_unknown_model_rejected(self, certificate, result):
        certificate.offset_model = "psychic"
        assert check_certificate(certificate, result) == [
            "unknown offset model 'psychic'"
        ]


class TestTamperedCounterexamples:
    @pytest.fixture
    def refutation(self, result):
        cert = certify(result, pools={"adder": 0})
        assert not cert.safe
        return cert

    def test_honest_refutation_passes(self, refutation, result):
        assert check_certificate(refutation, result, pools={"adder": 0}) == []

    def test_whitewashed_verdict_rejected(self, refutation, result):
        refutation.verdict = VERDICT_SAFE
        problems = check_certificate(refutation, result, pools={"adder": 0})
        assert any("says safe" in p for p in problems)

    def test_inflated_demand_rejected(self, refutation, result):
        cex = refutation.counterexample
        refutation.counterexample = dataclasses.replace(
            cex, demand=cex.demand + 3
        )
        problems = check_certificate(refutation, result, pools={"adder": 0})
        assert any("summed usage" in p for p in problems)

    def test_off_grid_start_rejected(self, refutation, result):
        cex = refutation.counterexample
        c = cex.contributions[0]
        grid = max(1, result.grid_spacing(c.process))
        if grid == 1:
            pytest.skip("grid of 1 admits every start")
        period = cex.period
        # Shift start AND slot together so the slot arithmetic still
        # holds but the start leaves the configured grid.
        moved = dataclasses.replace(c, start=c.start + 1)
        refutation.counterexample = dataclasses.replace(
            cex,
            slot=(cex.slot + 1) % period,
            contributions=[moved]
            + [
                dataclasses.replace(other, start=other.start + 1)
                for other in cex.contributions[1:]
            ],
        )
        problems = check_certificate(refutation, result, pools={"adder": 0})
        assert any("not on" in p and "grid" in p for p in problems)

    def test_fabricated_contribution_rejected(self, refutation, result):
        cex = refutation.counterexample
        fake = dataclasses.replace(
            cex.contributions[0], usage=cex.contributions[0].usage + 1
        )
        refutation.counterexample = dataclasses.replace(
            cex,
            demand=cex.demand + 1,
            contributions=[fake] + list(cex.contributions[1:]),
        )
        problems = check_certificate(refutation, result, pools={"adder": 0})
        assert any("is not in the schedule" in p for p in problems)

    def test_json_round_trip_preserves_rejection(self, refutation, result):
        refutation.verdict = VERDICT_SAFE
        again = Certificate.from_json(refutation.to_json())
        assert check_certificate(again, result, pools={"adder": 0})
