"""Tests for the symbolic safety certifier.

The certifier must (a) prove the paper's system safe under its deployed
offsets, (b) refute under-provisioned pools with a concrete,
grid-admissible counterexample, and (c) agree with a brute-force
enumeration of every admissible rotation combination — the coset
quotient and symmetry reductions are only sound if they never change
the answer.
"""

from itertools import product

import pytest

from repro.analysis.static import (
    MODEL_ANY,
    MODEL_DEPLOYED,
    CertificationError,
    certify,
    check_certificate,
    pool_conflict,
)
from repro.core.periods import PeriodAssignment
from repro.core.scheduler import ModuloSystemScheduler
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import paper_assignment, paper_periods, paper_system


def small_shared_system(period=4, deadline=8):
    """Two processes sharing adders globally."""
    library = default_library()
    system = SystemSpec(name="small")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        graph.add("a0", OpKind.ADD)
        graph.add("a1", OpKind.ADD)
        graph.add("a2", OpKind.ADD)
        graph.add_edge("a0", "a1")
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    assignment.make_global("adder", ["p1", "p2"])
    return ModuloSystemScheduler(library).schedule(
        system, assignment, PeriodAssignment({"adder": period})
    )


@pytest.fixture(scope="module")
def paper_result():
    system, library = paper_system()
    return ModuloSystemScheduler(library).schedule(
        system, paper_assignment(library), paper_periods()
    )


def brute_force_peak(proof):
    """Max slot demand over the FULL rotation product (no reductions)."""
    period = proof.period
    peak = 0
    for combo in product(*(env.rotations() for env in proof.processes)):
        for tau in range(period):
            demand = sum(
                env.envelope[(tau - rho) % period]
                for env, rho in zip(proof.processes, combo)
            )
            peak = max(peak, demand)
    return peak


class TestDeployedModel:
    def test_paper_system_is_safe(self, paper_result):
        cert = certify(paper_result)
        assert cert.safe
        assert cert.offset_model == MODEL_DEPLOYED
        assert {p.type_name for p in cert.types} == {
            "adder",
            "subtracter",
            "multiplier",
        }
        for proof in cert.types:
            assert proof.proven_peak <= proof.pool
        assert check_certificate(cert, paper_result) == []

    def test_paper_system_safe_without_fast_path(self, paper_result):
        cert = certify(paper_result, fast_path=False)
        assert cert.safe
        # Deployed offsets pin every process to one residue class.
        for proof in cert.types:
            assert proof.method == "enumeration"
            assert proof.classes_checked >= 1
            assert proof.proven_peak <= proof.pool
        assert check_certificate(cert, paper_result) == []

    def test_derived_pools_match_peak(self, paper_result):
        cert = certify(paper_result)
        for proof in cert.types:
            assert proof.pool == paper_result.global_instances(proof.type_name)

    def test_small_system_round_trips_through_checker(self):
        result = small_shared_system()
        cert = certify(result)
        assert cert.safe
        assert check_certificate(cert, result) == []

    def test_unknown_offset_model_rejected(self, paper_result):
        with pytest.raises(CertificationError):
            certify(paper_result, offset_model="bogus")


class TestRefutation:
    def test_underprovisioned_pool_is_refuted(self):
        result = small_shared_system()
        cert = certify(result, pools={"adder": 0})
        assert not cert.safe
        cex = cert.counterexample
        assert cex is not None
        assert cex.type_name == "adder"
        assert cex.demand > 0 == cex.pool
        # The refutation is self-consistent and checker-valid.
        assert check_certificate(cert, result, pools={"adder": 0}) == []

    def test_counterexample_starts_are_grid_admissible(self):
        result = small_shared_system()
        cert = certify(result, pools={"adder": 0})
        assert not cert.safe
        for c in cert.counterexample.contributions:
            grid = max(1, result.grid_spacing(c.process))
            assert c.start % grid == result.offset_of(c.process) % grid
            assert c.start >= 0

    def test_triple_names_type_slot_processes(self):
        result = small_shared_system()
        cert = certify(result, pools={"adder": 0})
        triple = cert.counterexample.triple()
        assert triple.startswith("(type 'adder', slot ")
        assert "processes" in triple

    def test_pool_conflict_helper(self):
        result = small_shared_system()
        cex = pool_conflict(result, "adder", 0)
        assert cex.pool == 0
        assert cex.demand > 0
        assert "exceeds pool 0" in cex.render()
        with pytest.raises(CertificationError):
            pool_conflict(result, "not-a-type", 1)


class TestAnyOffsetModel:
    def test_any_model_covers_full_residue_classes(self):
        result = small_shared_system(period=4)
        cert = certify(result, offset_model=MODEL_ANY, pools={"adder": 99})
        assert cert.safe
        proof = cert.proof("adder")
        assert proof.classes_total == 4 * 4
        for env in proof.processes:
            assert env.rotations() == [0, 1, 2, 3]

    def test_reductions_match_brute_force(self):
        """Safe any-offset proofs state the exact brute-force peak."""
        for period in (3, 4, 6):
            result = small_shared_system(period=period)
            cert = certify(
                result,
                offset_model=MODEL_ANY,
                pools={"adder": 99},
                fast_path=False,
            )
            proof = cert.proof("adder")
            assert proof.proven_peak == brute_force_peak(proof), (
                f"period {period}: reduction changed the proven peak"
            )

    def test_deployed_reductions_match_brute_force(self):
        for period in (3, 4, 6):
            result = small_shared_system(period=period)
            cert = certify(result, pools={"adder": 99}, fast_path=False)
            proof = cert.proof("adder")
            assert proof.proven_peak == brute_force_peak(proof)

    def test_paper_system_unsafe_under_any_offsets(self, paper_result):
        """Safety RELIES on the deployed offsets: free offsets break it."""
        deployed = certify(paper_result)
        anymodel = certify(paper_result, offset_model=MODEL_ANY)
        assert deployed.safe
        assert not anymodel.safe
        assert check_certificate(anymodel, paper_result) == []


class TestIntervalFastPath:
    def test_fast_path_proofs_skip_enumeration(self, paper_result):
        cert = certify(paper_result)
        assert cert.safe
        for proof in cert.types:
            assert proof.method == "interval"
            assert proof.classes_checked == 0
            # classes_total still records the coverage the interval
            # bound dominates.
            assert proof.classes_total >= 1
        assert check_certificate(cert, paper_result) == []

    def test_interval_bound_dominates_exact_peak(self, paper_result):
        fast = certify(paper_result)
        exact = certify(paper_result, fast_path=False)
        for proof in fast.types:
            reference = exact.proof(proof.type_name)
            assert proof.proven_peak >= reference.proven_peak
            assert proof.pool == reference.pool

    def test_fast_path_never_refutes(self):
        """An over-pool interval bound falls through to enumeration."""
        result = small_shared_system()
        cert = certify(result, pools={"adder": 0})
        assert not cert.safe
        proof = cert.proof("adder")
        assert proof.method == "enumeration"
        assert proof.classes_checked >= 1
        assert cert.counterexample is not None

    def test_fast_path_counts_proofs(self, paper_result):
        from repro.obs.counters import ABSINT_FASTPATH_PROOFS, Counters

        counters = Counters()
        with counters.activate():
            certify(paper_result)
        assert counters.get(ABSINT_FASTPATH_PROOFS) == 3
