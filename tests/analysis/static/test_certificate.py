"""Round-trip and rendering tests for the certificate artifact."""

import pytest

from repro.analysis.static import (
    CERTIFICATE_FORMAT,
    MODEL_DEPLOYED,
    VERDICT_SAFE,
    VERDICT_UNSAFE,
    Certificate,
    Contribution,
    Counterexample,
    ProcessEnvelope,
    SlotWitness,
    TypeProof,
)


def sample_certificate(verdict=VERDICT_SAFE):
    envelope = ProcessEnvelope(
        process="p1",
        grid=4,
        configured_offset=0,
        rotation_base=0,
        rotation_step=4,
        rotation_count=1,
        envelope=[2, 1, 0, 0],
        witnesses=[
            SlotWitness(slot=0, block="main", step=0, usage=2),
            SlotWitness(slot=1, block="main", step=5, usage=1),
        ],
    )
    proof = TypeProof(
        type_name="adder",
        period=4,
        pool=2,
        proven_peak=2,
        multicycle=False,
        classes_total=1,
        classes_checked=1,
        processes=[envelope],
    )
    counterexample = None
    if verdict == VERDICT_UNSAFE:
        counterexample = Counterexample(
            type_name="adder",
            slot=0,
            period=4,
            pool=1,
            demand=2,
            contributions=[
                Contribution(process="p1", block="main", step=0, usage=1, start=0),
                Contribution(process="p2", block="main", step=4, usage=1, start=8),
            ],
        )
    return Certificate(
        system="demo",
        offset_model=MODEL_DEPLOYED,
        verdict=verdict,
        types=[proof],
        counterexample=counterexample,
    )


class TestRoundTrip:
    def test_json_round_trip_safe(self):
        cert = sample_certificate()
        again = Certificate.from_json(cert.to_json())
        assert again == cert

    def test_json_round_trip_unsafe(self):
        cert = sample_certificate(VERDICT_UNSAFE)
        again = Certificate.from_json(cert.to_json())
        assert again == cert
        assert again.counterexample is not None
        assert again.counterexample.contributions == cert.counterexample.contributions

    def test_save_load(self, tmp_path):
        cert = sample_certificate()
        path = str(tmp_path / "cert.json")
        cert.save(path)
        assert Certificate.load(path) == cert

    def test_format_tag_required(self):
        assert sample_certificate().as_dict()["format"] == CERTIFICATE_FORMAT
        with pytest.raises(ValueError, match="not a repro-certificate"):
            Certificate.from_json('{"format": "something-else"}')
        with pytest.raises(ValueError):
            Certificate.from_json('{"system": "demo"}')


class TestAccessors:
    def test_safe_property_tracks_verdict(self):
        assert sample_certificate().safe
        assert not sample_certificate(VERDICT_UNSAFE).safe

    def test_proof_lookup(self):
        cert = sample_certificate()
        assert cert.proof("adder").pool == 2
        with pytest.raises(KeyError):
            cert.proof("multiplier")

    def test_rotations_enumerate_the_coset(self):
        env = ProcessEnvelope(
            process="p",
            grid=6,
            configured_offset=2,
            rotation_base=2,
            rotation_step=2,
            rotation_count=2,
            envelope=[1, 0, 0, 0],
        )
        assert env.rotations() == [2, 0]

    def test_triple_and_render(self):
        cex = sample_certificate(VERDICT_UNSAFE).counterexample
        assert cex.triple() == "(type 'adder', slot 0, processes p1, p2)"
        text = cex.render()
        assert "slot demand 2 exceeds pool 1" in text
        assert "p2/main starting at t=8" in text
        assert cex.offsets == {"p1": 0, "p2": 8}

    def test_type_proof_safety(self):
        proof = sample_certificate().proof("adder")
        assert proof.safe
        import dataclasses

        assert not dataclasses.replace(proof, proven_peak=3).safe
