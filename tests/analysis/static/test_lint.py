"""Tests for the rule-driven IR lint: every rule must fire on a crafted
defect and stay silent on clean input."""

from repro.analysis.static import DEFAULT_RULES, RULES_BY_NAME, run_lint
from repro.api import Problem
from repro.core.periods import PeriodAssignment
from repro.ir.dfg import DataFlowGraph
from repro.ir.operation import OpKind
from repro.ir.process import Block, Process, SystemSpec
from repro.resources.assignment import ResourceAssignment
from repro.resources.library import default_library
from repro.workloads import paper_assignment, paper_periods, paper_system


def make_problem(build_graph, deadline=8, period=4, globals_on=True):
    """Two identical single-block processes sharing adders."""
    library = default_library()
    system = SystemSpec(name="lintable")
    for name in ("p1", "p2"):
        graph = DataFlowGraph(name=f"{name}-g")
        build_graph(graph)
        process = Process(name=name)
        process.add_block(Block(name="main", graph=graph, deadline=deadline))
        system.add_process(process)
    assignment = ResourceAssignment(library)
    periods = {}
    if globals_on:
        assignment.make_global("adder", ["p1", "p2"])
        periods["adder"] = period
    return Problem(system, library, assignment, PeriodAssignment(periods))


def add_chain(graph, count=3):
    prev = None
    for i in range(count):
        graph.add(f"a{i}", OpKind.ADD)
        if prev is not None:
            graph.add_edge(prev, f"a{i}")
        prev = f"a{i}"


def codes(report):
    return [d.code for d in report.diagnostics]


class TestProblemScopedRules:
    def test_clean_problem_has_no_errors_or_warnings(self):
        problem = make_problem(add_chain)
        report = run_lint(problem)
        assert not report.errors
        assert not report.warnings
        assert report.label == "lint"

    def test_infeasible_timeframe_fires_lint001(self):
        problem = make_problem(lambda g: add_chain(g, count=5), deadline=3)
        report = run_lint(problem, rules=[RULES_BY_NAME["timeframes"]])
        assert "LINT001" in codes(report)
        assert report.exit_code == 2

    def test_rigid_block_fires_lint201(self):
        # Critical path exactly fills the deadline: zero mobility.
        problem = make_problem(lambda g: add_chain(g, count=4), deadline=4)
        report = run_lint(problem, rules=[RULES_BY_NAME["timeframes"]])
        assert "LINT201" in codes(report)
        assert report.exit_code == 0  # info only

    def test_dead_operation_fires_lint101(self):
        def build(graph):
            add_chain(graph, count=2)
            graph.add("st", OpKind.STORE)
            graph.add_edge("a1", "st")
            graph.add("dead", OpKind.ADD)  # sink, but not a store

        problem = make_problem(build, globals_on=False)
        report = run_lint(problem, rules=[RULES_BY_NAME["dead-operations"]])
        found = [d for d in report.diagnostics if d.code == "LINT101"]
        assert [d.op for d in found] == ["dead", "dead"]  # once per process

    def test_plain_sinks_without_stores_are_not_dead(self):
        problem = make_problem(add_chain)
        report = run_lint(problem, rules=[RULES_BY_NAME["dead-operations"]])
        assert codes(report) == []

    def test_redundant_edge_fires_lint102(self):
        def build(graph):
            add_chain(graph, count=3)
            graph.add_edge("a0", "a2")  # implied by a0 -> a1 -> a2

        problem = make_problem(build)
        report = run_lint(problem, rules=[RULES_BY_NAME["redundant-edges"]])
        assert codes(report).count("LINT102") == 2  # once per process

    def test_diamond_edges_are_not_redundant(self):
        def build(graph):
            for name in ("a0", "a1", "a2", "a3"):
                graph.add(name, OpKind.ADD)
            graph.add_edges(
                [("a0", "a1"), ("a0", "a2"), ("a1", "a3"), ("a2", "a3")]
            )

        problem = make_problem(build)
        report = run_lint(problem, rules=[RULES_BY_NAME["redundant-edges"]])
        assert codes(report) == []

    def test_period_grid_rule_reuses_preflight_codes(self):
        # Period exceeding every sharing deadline: PERIOD103.
        problem = make_problem(add_chain, deadline=4, period=9)
        report = run_lint(problem, rules=[RULES_BY_NAME["period-grid"]])
        assert "PERIOD103" in codes(report)


class TestScheduleScopedRules:
    def test_overprovisioned_pool_fires_lint103(self):
        problem = make_problem(add_chain)
        report = run_lint(
            problem,
            rules=[RULES_BY_NAME["pool-provisioning"]],
            pools={"adder": 7},
        )
        found = [d for d in report.diagnostics if d.code == "LINT103"]
        assert len(found) == 1
        assert "7" in found[0].message

    def test_exact_pool_is_silent(self):
        problem = make_problem(add_chain)
        report = run_lint(problem, rules=[RULES_BY_NAME["pool-provisioning"]])
        assert codes(report) == []

    def test_idle_slots_fire_lint203(self):
        # One add per block against period 4: most slots stay idle.
        problem = make_problem(lambda g: add_chain(g, count=1), period=4)
        report = run_lint(problem, rules=[RULES_BY_NAME["idle-slots"]])
        assert "LINT203" in codes(report)
        assert report.exit_code == 0

    def test_unschedulable_problem_skips_schedule_rules(self):
        problem = make_problem(lambda g: add_chain(g, count=5), deadline=3)
        report = run_lint(problem)
        # Problem-scoped findings present, schedule-scoped rules skipped.
        assert "LINT001" in codes(report)
        assert "LINT203" not in codes(report)


class TestRuleSet:
    def test_default_rules_have_unique_names_and_codes(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert len(names) == len(set(names))
        assert set(RULES_BY_NAME) == set(names)

    def test_paper_system_lints_clean(self):
        system, library = paper_system()
        problem = Problem(
            system, library, paper_assignment(library), paper_periods()
        )
        report = run_lint(problem)
        assert not report.errors
        assert not report.warnings

    def test_report_as_dict_counts(self):
        problem = make_problem(lambda g: add_chain(g, count=5), deadline=3)
        data = run_lint(problem, rules=[RULES_BY_NAME["timeframes"]]).as_dict()
        assert data["counts"]["errors"] >= 1
        assert data["exit_code"] == 2
