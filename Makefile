PYTHON ?= python

.PHONY: install test bench examples artifacts clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/multi_process_sharing.py
	$(PYTHON) examples/reactive_loops.py
	$(PYTHON) examples/period_exploration.py
	$(PYTHON) examples/hdl_generation.py

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
